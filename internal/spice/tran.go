package spice

import (
	"fmt"
	"math"

	"sramtest/internal/num"
)

// TranSpec describes a transient analysis run.
type TranSpec struct {
	TStop  float64  // end time (s)
	DtMax  float64  // largest allowed step (s)
	DtMin  float64  // smallest allowed step before giving up (s)
	Record []NodeID // node voltages to record (all points)
}

// Waveform holds recorded transient node voltages.
type Waveform struct {
	Time    []float64
	Names   []string
	Signals [][]float64 // Signals[k][i] = voltage of Names[k] at Time[i]
}

// Signal returns the samples of the named node.
func (w *Waveform) Signal(name string) []float64 {
	for k, n := range w.Names {
		if n == name {
			return w.Signals[k]
		}
	}
	panic(fmt.Sprintf("spice: waveform has no signal %q", name))
}

// Min returns the minimum value of the named signal and its time.
func (w *Waveform) Min(name string) (t, v float64) {
	s := w.Signal(name)
	t, v = w.Time[0], s[0]
	for i, x := range s {
		if x < v {
			t, v = w.Time[i], x
		}
	}
	return t, v
}

// Final returns the last recorded value of the named signal.
func (w *Waveform) Final(name string) float64 {
	s := w.Signal(name)
	return s[len(s)-1]
}

// TimeBelow returns the total time the named signal spends strictly below
// the threshold, by trapezoidal accounting of the sample intervals.
func (w *Waveform) TimeBelow(name string, threshold float64) float64 {
	s := w.Signal(name)
	total := 0.0
	for i := 1; i < len(s); i++ {
		dt := w.Time[i] - w.Time[i-1]
		a, b := s[i-1], s[i]
		switch {
		case a < threshold && b < threshold:
			total += dt
		case a >= threshold && b >= threshold:
			// nothing
		default:
			// Linear crossing inside the interval.
			frac := (threshold - a) / (b - a)
			if a < threshold {
				total += dt * frac
			} else {
				total += dt * (1 - frac)
			}
		}
	}
	return total
}

// Tran runs a backward-Euler transient analysis starting from the given
// initial operating point (which must have been solved on the same
// circuit, typically with the pre-switching source/switch states already
// updated to their t>0 values for a step response).
//
// Backward Euler is deliberately chosen over trapezoidal integration: the
// regulator turn-on transients are stiff RC decays where BE's L-stability
// avoids the ringing artifacts trapezoidal integration produces, and the
// experiments only need monotone settling behaviour and undershoot depth,
// not phase accuracy. Step size adapts by halving on Newton failure and
// growing 1.5× on easy convergence.
// It returns the recorded waveform and the final state (usable as the
// initial condition of a follow-on transient, e.g. the two-phase DS-entry
// sequencing of the regulator).
func Tran(c *Circuit, initial *Solution, spec TranSpec, opt Options) (*Waveform, *Solution, error) {
	if spec.TStop <= 0 || spec.DtMax <= 0 {
		return nil, nil, fmt.Errorf("spice: invalid transient spec TStop=%g DtMax=%g", spec.TStop, spec.DtMax)
	}
	if spec.DtMin <= 0 {
		spec.DtMin = spec.DtMax * 1e-9
	}
	n := numUnknowns(c)
	if initial == nil || len(initial.X) != n {
		return nil, nil, fmt.Errorf("spice: transient needs an initial operating point with %d unknowns", n)
	}

	ctx := &Context{
		Mode:     ModeTran,
		Temp:     c.Temp,
		SrcScale: 1,
		Gmin:     opt.Gmin,
		X:        append([]float64(nil), initial.X...),
		Prev:     append([]float64(nil), initial.X...),
		jac:      num.NewMatrix(n, n),
		res:      make([]float64, n),
		First:    true,
	}

	wf := &Waveform{}
	for _, id := range spec.Record {
		wf.Names = append(wf.Names, c.NodeName(id))
		wf.Signals = append(wf.Signals, nil)
	}
	record := func(t float64, x []float64) {
		wf.Time = append(wf.Time, t)
		for k, id := range spec.Record {
			v := 0.0
			if id != Ground {
				v = x[int(id)-1]
			}
			wf.Signals[k] = append(wf.Signals[k], v)
		}
	}
	record(0, ctx.Prev)

	t := 0.0
	dt := spec.DtMax / 16 // conservative opening step
	for t < spec.TStop {
		if t+dt > spec.TStop {
			dt = spec.TStop - t
		}
		ctx.Dt = dt
		ctx.Time = t + dt
		copy(ctx.X, ctx.Prev) // warm start from last accepted point
		err := newton(c, ctx, opt)
		if err != nil {
			if dt/2 < spec.DtMin {
				return nil, nil, fmt.Errorf("spice: transient stalled at t=%g (dt=%g): %w", t, dt, err)
			}
			dt /= 2
			continue
		}
		t += dt
		copy(ctx.Prev, ctx.X)
		ctx.First = false
		record(t, ctx.Prev)
		if dt < spec.DtMax {
			dt = math.Min(dt*1.5, spec.DtMax)
		}
	}
	return wf, &Solution{c: c, X: append([]float64(nil), ctx.Prev...)}, nil
}
