package spice

import (
	"math"
	"strings"
	"testing"
)

// rcCircuit builds V1 -- R -- node out -- C -- gnd with the source at v0.
func rcCircuit(r, cap, v0 float64) (*Circuit, *VSource) {
	c := New()
	vs := c.Node("s")
	out := c.Node("out")
	v := &VSource{Name: "V1", Pos: vs, Neg: Ground, V: v0}
	c.Add(v)
	c.Add(&Resistor{Name: "R1", A: vs, B: out, R: r})
	c.Add(&Capacitor{Name: "C1", A: out, B: Ground, C: cap})
	return c, v
}

func TestTranRCCharge(t *testing.T) {
	// Step response: out(t) = 1 - exp(-t/RC), RC = 1 ms.
	c, v := rcCircuit(1e6, 1e-9, 0)
	v.V = 0
	init, err := OP(c, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v.V = 1 // apply the step
	outID, _ := c.FindNode("out")
	wf, _, err := Tran(c, init, TranSpec{TStop: 5e-3, DtMax: 20e-6, Record: []NodeID{outID}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// After 5 RC the output is within 1% of the rail.
	if got := wf.Final("out"); math.Abs(got-1) > 0.01 {
		t.Errorf("final value %g, want ≈1", got)
	}
	// At ~1 RC the value should be near 1-1/e (BE is first order; allow 5%).
	idx := 0
	for i, tt := range wf.Time {
		if tt >= 1e-3 {
			idx = i
			break
		}
	}
	if got := wf.Signal("out")[idx]; math.Abs(got-0.632) > 0.05 {
		t.Errorf("value at 1·RC = %g, want ≈0.632", got)
	}
	// Monotone rise.
	s := wf.Signal("out")
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1]-1e-9 {
			t.Fatalf("RC charge not monotone at %d", i)
		}
	}
}

func TestTranRCDischarge(t *testing.T) {
	c, v := rcCircuit(1e6, 1e-9, 1)
	init, err := OP(c, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v.V = 0
	outID, _ := c.FindNode("out")
	wf, _, err := Tran(c, init, TranSpec{TStop: 5e-3, DtMax: 20e-6, Record: []NodeID{outID}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := wf.Final("out"); got > 0.01 {
		t.Errorf("final value %g, want ≈0", got)
	}
	if got := wf.Signal("out")[0]; math.Abs(got-1) > 1e-6 {
		t.Errorf("initial value %g, want 1", got)
	}
}

func TestWaveformTimeBelow(t *testing.T) {
	wf := &Waveform{
		Time:    []float64{0, 1, 2, 3, 4},
		Names:   []string{"x"},
		Signals: [][]float64{{1, 0, 0, 1, 1}},
	}
	// Crossing 0.5: enters below at t=0.5, leaves at t=2.5 => 2.0 s below.
	if got := wf.TimeBelow("x", 0.5); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("TimeBelow = %g, want 2.0", got)
	}
	if got := wf.TimeBelow("x", -1); got != 0 {
		t.Errorf("TimeBelow(-1) = %g, want 0", got)
	}
	if got := wf.TimeBelow("x", 2); math.Abs(got-4) > 1e-12 {
		t.Errorf("TimeBelow(2) = %g, want 4", got)
	}
}

func TestWaveformMin(t *testing.T) {
	wf := &Waveform{
		Time:    []float64{0, 1, 2},
		Names:   []string{"x"},
		Signals: [][]float64{{3, -1, 2}},
	}
	tm, v := wf.Min("x")
	if tm != 1 || v != -1 {
		t.Errorf("Min = (%g, %g)", tm, v)
	}
}

func TestWaveformUnknownSignalPanics(t *testing.T) {
	wf := &Waveform{Time: []float64{0}, Names: []string{"x"}, Signals: [][]float64{{0}}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown signal")
		}
	}()
	wf.Signal("y")
}

func TestTranValidation(t *testing.T) {
	c, _ := rcCircuit(1e3, 1e-12, 0)
	if _, _, err := Tran(c, nil, TranSpec{TStop: 1, DtMax: 0.1}, DefaultOptions()); err == nil {
		t.Error("Tran without initial solution should fail")
	}
	init, _ := OP(c, nil, DefaultOptions())
	if _, _, err := Tran(c, init, TranSpec{TStop: -1, DtMax: 0.1}, DefaultOptions()); err == nil {
		t.Error("Tran with negative TStop should fail")
	}
}

func TestTranEnergyConservation(t *testing.T) {
	// Two capacitors sharing charge through a resistor: total charge is
	// conserved, final voltages equalize.
	c := New()
	a, b := c.Node("a"), c.Node("b")
	c.Add(&Capacitor{Name: "C1", A: a, B: Ground, C: 1e-9})
	c.Add(&Capacitor{Name: "C2", A: b, B: Ground, C: 1e-9})
	c.Add(&Resistor{Name: "R1", A: a, B: b, R: 1e6})
	// Pre-charge node a to 1 V with a source, solve, then remove... the
	// simpler equivalent: build the initial state by hand.
	n := numUnknowns(c)
	init := &Solution{c: c, X: make([]float64, n)}
	init.X[int(a)-1] = 1.0
	wf, _, err := Tran(c, init, TranSpec{TStop: 20e-3, DtMax: 50e-6, Record: []NodeID{a, b}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	va, vb := wf.Final("a"), wf.Final("b")
	if math.Abs(va-vb) > 0.01 {
		t.Errorf("charge sharing did not equalize: %g vs %g", va, vb)
	}
	if math.Abs(va-0.5) > 0.02 {
		t.Errorf("final voltage %g, want ≈0.5 (charge conservation)", va)
	}
}

func TestWriteVCD(t *testing.T) {
	wf := &Waveform{
		Time:    []float64{0, 1e-6, 2e-6},
		Names:   []string{"vddcc", "n 2"},
		Signals: [][]float64{{1.0, 0.9, 0.9}, {0, 0.5, 0.6}},
	}
	var b strings.Builder
	if err := wf.WriteVCD(&b, "regulator"); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{
		"$timescale 1us $end",
		"$var real 64 ! vddcc $end",
		"$var real 64 \" n_2 $end",
		"$enddefinitions",
		"#0", "#1", "#2",
		"r1 !", "r0.9 !",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VCD missing %q:\n%s", want, s)
		}
	}
	// Unchanged values must not be re-emitted: vddcc stays 0.9 at #2.
	if strings.Count(s, "r0.9 !") != 1 {
		t.Errorf("redundant value changes:\n%s", s)
	}
	var empty Waveform
	if err := empty.WriteVCD(&b, "m"); err == nil {
		t.Error("empty waveform should error")
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
