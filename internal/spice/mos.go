package spice

import "sramtest/internal/device"

// Mosfet is the circuit element wrapping a device.MOS model instance.
// Terminal order follows SPICE convention: drain, gate, source, bulk.
type Mosfet struct {
	Name       string
	D, G, S, B NodeID
	Dev        *device.MOS
}

// ElementName implements Element.
func (m *Mosfet) ElementName() string { return m.Name }

// Terminals implements Element.
func (m *Mosfet) Terminals() []NodeID { return []NodeID{m.D, m.G, m.S, m.B} }

// Stamp implements Element: the drain current Id enters the drain terminal
// and leaves at the source, so KCL sees +Id leaving the drain node and −Id
// leaving the source node. The Jacobian rows couple both nodes to all four
// controlling terminal voltages.
func (m *Mosfet) Stamp(ctx *Context) {
	op := m.Dev.Eval(ctx.V(m.G), ctx.V(m.S), ctx.V(m.D), ctx.V(m.B), ctx.Temp)

	ctx.AddCurrent(m.D, op.Id)
	ctx.AddCurrent(m.S, -op.Id)

	ctx.AddConductance(m.D, m.G, op.Gm)
	ctx.AddConductance(m.D, m.D, op.Gds)
	ctx.AddConductance(m.D, m.S, op.Gms)
	ctx.AddConductance(m.D, m.B, op.Gmb)

	ctx.AddConductance(m.S, m.G, -op.Gm)
	ctx.AddConductance(m.S, m.D, -op.Gds)
	ctx.AddConductance(m.S, m.S, -op.Gms)
	ctx.AddConductance(m.S, m.B, -op.Gmb)
}
