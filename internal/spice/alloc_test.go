package spice

import (
	"testing"

	"sramtest/internal/device"
)

// build6T constructs a 6T SRAM cell at the spice level: two cross-coupled
// CMOS inverters plus two pass NMOS devices with word line and bit lines
// grounded (the deep-sleep configuration). It exercises every hot element
// kind (VSource, Mosfet, Resistor, Capacitor).
func build6T() (*Circuit, *VSource) {
	c := New()
	vdd := c.Node("vdd")
	s := c.Node("s")
	sn := c.Node("sn")
	supply := &VSource{Name: "VDD", Pos: vdd, Neg: Ground, V: 0.77}
	c.Add(supply)
	add := func(name string, d, g, src NodeID, pmos bool, w float64) {
		var p device.MOSParams
		b := Ground
		if pmos {
			p = device.NewPMOSParams(w, 40e-9)
			b = vdd
		} else {
			p = device.NewNMOSParams(w, 40e-9)
		}
		c.Add(&Mosfet{Name: name, D: d, G: g, S: src, B: b, Dev: device.NewMOS(name, p)})
	}
	add("MP1", s, sn, vdd, true, 100e-9)
	add("MN1", s, sn, Ground, false, 200e-9)
	add("MP2", sn, s, vdd, true, 100e-9)
	add("MN2", sn, s, Ground, false, 200e-9)
	// Pass gates: WL and BL at 0 V in deep sleep.
	add("MPG1", s, Ground, Ground, false, 140e-9)
	add("MPG2", sn, Ground, Ground, false, 140e-9)
	// Storage-node capacitances give the transient something to integrate.
	c.Add(&Capacitor{Name: "CS", A: s, B: Ground, C: 0.2e-15})
	c.Add(&Capacitor{Name: "CSN", A: sn, B: Ground, C: 0.2e-15})
	return c, supply
}

// seed6T biases the cell into the stored-'1' state (S high) so the
// operating point is the interesting bistable one, not the metastable
// midpoint.
func seed6T(c *Circuit) *Solution {
	n := numUnknowns(c)
	x := make([]float64, n)
	x[int(c.nodeIndex["s"])-1] = 0.77
	return &Solution{c: c, X: x}
}

// TestOPIntoZeroAllocSteadyState is the allocation regression guard for
// the DC path: once the circuit's workspace and the destination Solution
// exist, repeated warm-started operating points must not touch the heap.
func TestOPIntoZeroAllocSteadyState(t *testing.T) {
	c, supply := build6T()
	opt := DefaultOptions()
	var sol Solution
	if err := OPInto(c, seed6T(c), opt, &sol); err != nil {
		t.Fatalf("warm-up OP: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		// Nudge the supply so every run is a real (but easy) re-solve.
		supply.V = 0.77
		if err := OPInto(c, &sol, opt, &sol); err != nil {
			t.Fatalf("OPInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("OPInto steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTranIntoZeroAllocSteadyState is the transient twin: with the
// waveform and final-state buffers recycled, a repeated transient run
// performs no steady-state heap allocations.
func TestTranIntoZeroAllocSteadyState(t *testing.T) {
	c, _ := build6T()
	opt := DefaultOptions()
	var op Solution
	if err := OPInto(c, seed6T(c), opt, &op); err != nil {
		t.Fatalf("OP: %v", err)
	}
	spec := TranSpec{TStop: 1e-9, DtMax: 1e-10, Record: []NodeID{c.nodeIndex["s"], c.nodeIndex["sn"]}}
	var wf Waveform
	var final Solution
	if err := TranInto(c, &op, spec, opt, &wf, &final); err != nil {
		t.Fatalf("warm-up Tran: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := TranInto(c, &op, spec, opt, &wf, &final); err != nil {
			t.Fatalf("TranInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("TranInto steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestOPMatchesOPInto pins the wrapper contract: OP must return exactly
// what OPInto writes into a recycled Solution.
func TestOPMatchesOPInto(t *testing.T) {
	c, _ := build6T()
	opt := DefaultOptions()
	seed := seed6T(c)
	sol, err := OP(c, seed, opt)
	if err != nil {
		t.Fatalf("OP: %v", err)
	}
	var into Solution
	if err := OPInto(c, seed, opt, &into); err != nil {
		t.Fatalf("OPInto: %v", err)
	}
	if len(sol.X) != len(into.X) {
		t.Fatalf("length mismatch %d vs %d", len(sol.X), len(into.X))
	}
	for i := range sol.X {
		if sol.X[i] != into.X[i] {
			t.Errorf("X[%d]: OP %g != OPInto %g", i, sol.X[i], into.X[i])
		}
	}
}

// TestOPIntoResultIndependent verifies OPInto copies the result out of
// the workspace: a later solve on the same circuit must not mutate a
// previously returned Solution.
func TestOPIntoResultIndependent(t *testing.T) {
	c, supply := build6T()
	opt := DefaultOptions()
	first, err := OP(c, seed6T(c), opt)
	if err != nil {
		t.Fatalf("OP: %v", err)
	}
	snapshot := append([]float64(nil), first.X...)
	supply.V = 0.5
	if _, err := OP(c, first, opt); err != nil {
		t.Fatalf("second OP: %v", err)
	}
	for i := range snapshot {
		if first.X[i] != snapshot[i] {
			t.Fatalf("X[%d] of earlier solution changed from %g to %g after a later solve", i, snapshot[i], first.X[i])
		}
	}
}
