package spice

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sramtest/internal/device"
)

// ParseValue parses a SPICE-style number with an optional engineering
// suffix: f p n u m k meg g t (case-insensitive). "10k" = 1e4,
// "2.5meg" = 2.5e6.
func ParseValue(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("spice: empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, s[:len(s)-1]
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, s[:len(s)-1]
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("spice: bad numeric value %q", s)
	}
	return v * mult, nil
}

// FormatValue renders a number with an engineering suffix, choosing the
// representation that round-trips through ParseValue.
func FormatValue(v float64) string {
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	type unit struct {
		scale float64
		sfx   string
	}
	units := []unit{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	for _, u := range units {
		if a >= u.scale {
			return trimFloat(v/u.scale) + u.sfx
		}
	}
	return trimFloat(v/1e-15) + "f"
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// Parse reads a SPICE-like netlist and returns the circuit. Supported
// cards (instance names must be unique; node "0"/"gnd" is ground):
//
//   - comment
//     Rname a b value
//     Cname a b value
//     Vname pos neg value
//     Iname pos neg value
//     Sname a b on|off [ron=..] [roff=..]
//     Mname d g s b nmos|pmos w=.. l=.. [dvth=..] [beta=..]
//     .temp value
//     .end
//
// The format exists so users can characterize their own regulator designs
// with cmd/defectchar ("the adopted methodology can be applied to any
// similar low-power SRAM design", paper §I).
func Parse(r io.Reader) (*Circuit, error) {
	c := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		card := strings.ToUpper(fields[0])
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spice: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch {
		case card == ".END":
			return c, nil
		case card == ".TEMP":
			if len(fields) != 2 {
				return nil, fail(".temp needs one value")
			}
			v, err := ParseValue(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Temp = v
		case card[0] == 'R':
			if len(fields) != 4 {
				return nil, fail("resistor needs: Rname a b value")
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Add(&Resistor{Name: fields[0], A: c.Node(fields[1]), B: c.Node(fields[2]), R: v})
		case card[0] == 'C':
			if len(fields) != 4 {
				return nil, fail("capacitor needs: Cname a b value")
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Add(&Capacitor{Name: fields[0], A: c.Node(fields[1]), B: c.Node(fields[2]), C: v})
		case card[0] == 'V':
			if len(fields) != 4 {
				return nil, fail("voltage source needs: Vname pos neg value")
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Add(&VSource{Name: fields[0], Pos: c.Node(fields[1]), Neg: c.Node(fields[2]), V: v})
		case card[0] == 'I':
			if len(fields) != 4 {
				return nil, fail("current source needs: Iname pos neg value")
			}
			v, err := ParseValue(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Add(&ISource{Name: fields[0], Pos: c.Node(fields[1]), Neg: c.Node(fields[2]), I: v})
		case card[0] == 'S':
			if len(fields) < 4 {
				return nil, fail("switch needs: Sname a b on|off [ron=..] [roff=..]")
			}
			sw := NewSwitch(fields[0], c.Node(fields[1]), c.Node(fields[2]))
			switch strings.ToLower(fields[3]) {
			case "on":
				sw.On = true
			case "off":
				sw.On = false
			default:
				return nil, fail("switch state must be on or off, got %q", fields[3])
			}
			for _, kv := range fields[4:] {
				key, val, err := splitKV(kv)
				if err != nil {
					return nil, fail("%v", err)
				}
				switch key {
				case "ron":
					sw.Ron = val
				case "roff":
					sw.Roff = val
				default:
					return nil, fail("unknown switch parameter %q", key)
				}
			}
			c.Add(sw)
		case card[0] == 'M':
			if len(fields) < 6 {
				return nil, fail("mosfet needs: Mname d g s b nmos|pmos w=.. l=..")
			}
			var params device.MOSParams
			w, l := 200e-9, 40e-9
			dvth, beta := 0.0, 1.0
			model := strings.ToLower(fields[5])
			for _, kv := range fields[6:] {
				key, val, err := splitKV(kv)
				if err != nil {
					return nil, fail("%v", err)
				}
				switch key {
				case "w":
					w = val
				case "l":
					l = val
				case "dvth":
					dvth = val
				case "beta":
					beta = val
				default:
					return nil, fail("unknown mosfet parameter %q", key)
				}
			}
			switch model {
			case "nmos":
				params = device.NewNMOSParams(w, l)
			case "pmos":
				params = device.NewPMOSParams(w, l)
			default:
				return nil, fail("unknown mosfet model %q", model)
			}
			dev := device.NewMOS(fields[0], params)
			dev.DVth = dvth
			dev.BetaScale = beta
			c.Add(&Mosfet{
				Name: fields[0],
				D:    c.Node(fields[1]), G: c.Node(fields[2]),
				S: c.Node(fields[3]), B: c.Node(fields[4]),
				Dev: dev,
			})
		default:
			return nil, fail("unknown card %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Print writes the circuit back out in the Parse format. Elements are
// emitted in insertion order, so Parse(Print(c)) reproduces the netlist.
func Print(w io.Writer, c *Circuit) error {
	if c.Temp != 25 {
		if _, err := fmt.Fprintf(w, ".temp %g\n", c.Temp); err != nil {
			return err
		}
	}
	for _, e := range c.Elements() {
		var line string
		switch el := e.(type) {
		case *Resistor:
			line = fmt.Sprintf("%s %s %s %s", el.Name, c.NodeName(el.A), c.NodeName(el.B), FormatValue(el.R))
		case *Capacitor:
			line = fmt.Sprintf("%s %s %s %s", el.Name, c.NodeName(el.A), c.NodeName(el.B), FormatValue(el.C))
		case *VSource:
			line = fmt.Sprintf("%s %s %s %s", el.Name, c.NodeName(el.Pos), c.NodeName(el.Neg), FormatValue(el.V))
		case *ISource:
			line = fmt.Sprintf("%s %s %s %s", el.Name, c.NodeName(el.Pos), c.NodeName(el.Neg), FormatValue(el.I))
		case *Switch:
			state := "off"
			if el.On {
				state = "on"
			}
			line = fmt.Sprintf("%s %s %s %s ron=%s roff=%s", el.Name, c.NodeName(el.A), c.NodeName(el.B), state, FormatValue(el.Ron), FormatValue(el.Roff))
		case *Mosfet:
			line = fmt.Sprintf("%s %s %s %s %s %s w=%s l=%s", el.Name,
				c.NodeName(el.D), c.NodeName(el.G), c.NodeName(el.S), c.NodeName(el.B),
				el.Dev.Params.Type, FormatValue(el.Dev.Params.W), FormatValue(el.Dev.Params.L))
			if el.Dev.DVth != 0 {
				line += fmt.Sprintf(" dvth=%s", FormatValue(el.Dev.DVth))
			}
			if el.Dev.BetaScale != 1 {
				line += fmt.Sprintf(" beta=%g", el.Dev.BetaScale)
			}
		default:
			return fmt.Errorf("spice: cannot print element %T (%s)", e, e.ElementName())
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".end")
	return err
}

func splitKV(s string) (string, float64, error) {
	i := strings.IndexByte(s, '=')
	if i < 0 {
		return "", 0, fmt.Errorf("expected key=value, got %q", s)
	}
	v, err := ParseValue(s[i+1:])
	if err != nil {
		return "", 0, err
	}
	return strings.ToLower(s[:i]), v, nil
}

// SortedElementNames returns all instance names, sorted (test helper).
func (c *Circuit) SortedElementNames() []string {
	names := make([]string, 0, len(c.elements))
	for _, e := range c.elements {
		names = append(names, e.ElementName())
	}
	sort.Strings(names)
	return names
}
