package spice

import (
	"fmt"
	"math"
)

// Resistor is a linear two-terminal resistor. Setting R to very large
// values (e.g. >500 MΩ, the paper's "actual open line") effectively opens
// the branch; R must be positive.
type Resistor struct {
	Name string
	A, B NodeID
	R    float64 // ohms
}

// ElementName implements Element.
func (r *Resistor) ElementName() string { return r.Name }

// Terminals implements Element.
func (r *Resistor) Terminals() []NodeID { return []NodeID{r.A, r.B} }

// Stamp implements Element.
func (r *Resistor) Stamp(ctx *Context) {
	if r.R <= 0 {
		panic(fmt.Sprintf("spice: resistor %s has non-positive resistance %g", r.Name, r.R))
	}
	ctx.StampConductance2(r.A, r.B, 1/r.R)
}

// Capacitor is a linear two-terminal capacitor. In DC analyses it is an
// open circuit; in transient analyses it uses a backward-Euler companion
// model (g = C/dt in parallel with a history current).
type Capacitor struct {
	Name string
	A, B NodeID
	C    float64 // farads
}

// ElementName implements Element.
func (c *Capacitor) ElementName() string { return c.Name }

// Terminals implements Element.
func (c *Capacitor) Terminals() []NodeID { return []NodeID{c.A, c.B} }

// Stamp implements Element.
func (c *Capacitor) Stamp(ctx *Context) {
	if ctx.Mode != ModeTran {
		return // open in DC
	}
	g := c.C / ctx.Dt
	v := ctx.V(c.A) - ctx.V(c.B)
	vPrev := ctx.PrevV(c.A) - ctx.PrevV(c.B)
	i := g * (v - vPrev) // backward-Euler capacitor current
	ctx.AddCurrent(c.A, i)
	ctx.AddCurrent(c.B, -i)
	ctx.AddConductance(c.A, c.A, g)
	ctx.AddConductance(c.A, c.B, -g)
	ctx.AddConductance(c.B, c.A, -g)
	ctx.AddConductance(c.B, c.B, g)
}

// VSource is an ideal independent voltage source forcing
// V(Pos) − V(Neg) = V. It contributes one branch-current unknown.
// Sources participate in source stepping via Context.SrcScale.
type VSource struct {
	Name     string
	Pos, Neg NodeID
	V        float64
	branch   int
}

// ElementName implements Element.
func (v *VSource) ElementName() string { return v.Name }

// Terminals implements Element.
func (v *VSource) Terminals() []NodeID { return []NodeID{v.Pos, v.Neg} }

// NumBranches implements BranchElement.
func (v *VSource) NumBranches() int { return 1 }

// SetBranch implements BranchElement.
func (v *VSource) SetBranch(i int) { v.branch = i }

// Stamp implements Element.
func (v *VSource) Stamp(ctx *Context) {
	i := ctx.Branch(v.branch)
	// Branch current flows from Pos through the source to Neg:
	// it leaves the circuit at Pos and re-enters at Neg.
	ctx.AddCurrent(v.Pos, i)
	ctx.AddCurrent(v.Neg, -i)
	if p := NodeUnknown(v.Pos); p >= 0 {
		ctx.AddJacobian(p, v.branch, 1)
		ctx.AddJacobian(v.branch, p, 1)
	}
	if n := NodeUnknown(v.Neg); n >= 0 {
		ctx.AddJacobian(n, v.branch, -1)
		ctx.AddJacobian(v.branch, n, -1)
	}
	// Branch equation residual: V(Pos) − V(Neg) − V·scale = 0.
	ctx.AddBranchResidual(v.branch, ctx.V(v.Pos)-ctx.V(v.Neg)-v.V*ctx.SrcScale)
}

// ISource is an ideal independent current source: current I flows from Pos
// through the source to Neg (SPICE convention), i.e. it pulls I out of the
// Pos node and injects it into the Neg node.
type ISource struct {
	Name     string
	Pos, Neg NodeID
	I        float64
}

// ElementName implements Element.
func (s *ISource) ElementName() string { return s.Name }

// Terminals implements Element.
func (s *ISource) Terminals() []NodeID { return []NodeID{s.Pos, s.Neg} }

// Stamp implements Element.
func (s *ISource) Stamp(ctx *Context) {
	i := s.I * ctx.SrcScale
	ctx.AddCurrent(s.Pos, i)
	ctx.AddCurrent(s.Neg, -i)
}

// Switch is a behavioral voltage-independent switch stamped as Ron or Roff
// depending on its state. It models the power-switch segments and the
// Vref/Vbias selector pass gates, whose switching is controlled by the
// power-mode logic rather than solved electrically.
type Switch struct {
	Name string
	A, B NodeID
	On   bool
	Ron  float64 // ohms when closed
	Roff float64 // ohms when open
}

// NewSwitch returns a switch with default on/off resistances (1 Ω / 10 GΩ).
func NewSwitch(name string, a, b NodeID) *Switch {
	return &Switch{Name: name, A: a, B: b, Ron: 1, Roff: 1e10}
}

// ElementName implements Element.
func (s *Switch) ElementName() string { return s.Name }

// Terminals implements Element.
func (s *Switch) Terminals() []NodeID { return []NodeID{s.A, s.B} }

// Stamp implements Element.
func (s *Switch) Stamp(ctx *Context) {
	r := s.Roff
	if s.On {
		r = s.Ron
	}
	ctx.StampConductance2(s.A, s.B, 1/r)
}

// LoadFunc evaluates a nonlinear two-terminal load: given the branch
// voltage v = V(A) − V(B) it returns the current flowing A→B and its
// derivative dI/dv. The function must be smooth and monotone for Newton
// convergence.
type LoadFunc func(v float64) (i, g float64)

// Load is a behavioral nonlinear conductance used to model the core-cell
// array seen from the V_DD_CC rail: leakage plus the extra current drawn
// by cells whose internal nodes approach instability (DESIGN.md §5.4).
type Load struct {
	Name string
	A, B NodeID
	F    LoadFunc
}

// ElementName implements Element.
func (l *Load) ElementName() string { return l.Name }

// Terminals implements Element.
func (l *Load) Terminals() []NodeID { return []NodeID{l.A, l.B} }

// Stamp implements Element.
func (l *Load) Stamp(ctx *Context) {
	v := ctx.V(l.A) - ctx.V(l.B)
	i, g := l.F(v)
	if math.IsNaN(i) || math.IsNaN(g) {
		panic(fmt.Sprintf("spice: load %s returned NaN at v=%g", l.Name, v))
	}
	ctx.AddCurrent(l.A, i)
	ctx.AddCurrent(l.B, -i)
	ctx.AddConductance(l.A, l.A, g)
	ctx.AddConductance(l.A, l.B, -g)
	ctx.AddConductance(l.B, l.A, -g)
	ctx.AddConductance(l.B, l.B, g)
}
