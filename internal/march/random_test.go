package march

import (
	"testing"

	"sramtest/internal/fault"
	"sramtest/internal/process"
	"sramtest/internal/sram"
)

// TestRandomReproducible pins the seeded-reproducibility contract: the
// same spec replays the identical operation stream, so two runs against
// identically faulty memories report identical failures.
func TestRandomReproducible(t *testing.T) {
	build := func() *sram.SRAM {
		s := sram.New()
		fault.NewInjector(fault.Fault{Kind: fault.SAF0, Victim: fault.Cell{Addr: 99, Bit: 3}}).Attach(s)
		return s
	}
	spec := RandomSpec{Ops: 40000, Seed: 7, DwellEvery: 64}
	a, err := RunRandom(spec, build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRandom(spec, build())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMiscompares != b.TotalMiscompares || len(a.Failures) != len(b.Failures) {
		t.Fatalf("runs diverged: %d/%d vs %d/%d miscompares",
			a.TotalMiscompares, len(a.Failures), b.TotalMiscompares, len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure %d diverged: %v vs %v", i, a.Failures[i], b.Failures[i])
		}
	}
	if a.TotalMiscompares == 0 {
		t.Error("40000 random ops never observed a stuck-at cell (stream too short or broken)")
	}
	// A different seed must produce a different stream.
	c, err := RunRandom(RandomSpec{Ops: 40000, Seed: 8, DwellEvery: 64}, build())
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalMiscompares == a.TotalMiscompares && len(c.Failures) == len(a.Failures) &&
		(len(a.Failures) == 0 || c.Failures[0] == a.Failures[0]) {
		t.Log("different seeds produced coincident reports (possible but suspicious)")
	}
}

// TestRandomCleanMemoryPasses: with no fault injected, every expect
// must match the shadow model.
func TestRandomCleanMemoryPasses(t *testing.T) {
	rep, err := RunRandom(RandomSpec{Ops: 2000, Seed: 1, DwellEvery: 100}, sram.New())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("clean memory flagged: %d miscompares, first %v", rep.TotalMiscompares, rep.Failures[0])
	}
	if rep.Ops != sram.Words+2000 {
		t.Errorf("ops = %d, want init %d + stream 2000", rep.Ops, sram.Words)
	}
}

// TestRandomSensitizesDRF: the mid-stream deep-sleep dwells must expose
// a retention fault a dwell-free stream never sees.
func TestRandomSensitizesDRF(t *testing.T) {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	build := func() *sram.SRAM {
		s := sram.New()
		// Rail far below every cell's DRV: all cells lose their contents
		// on any DS dwell.
		s.SetRetention(sram.NewThresholdRetention(cond, 0.01))
		return s
	}
	with, err := RunRandom(RandomSpec{Ops: 2000, Seed: 3, DwellEvery: 200}, build())
	if err != nil {
		t.Fatal(err)
	}
	if !with.Detected() {
		t.Error("dwelling stream missed a whole-array retention wipe")
	}
	without, err := RunRandom(RandomSpec{Ops: 2000, Seed: 3, DwellEvery: 0}, build())
	if err != nil {
		t.Fatal(err)
	}
	if without.Detected() {
		t.Error("dwell-free stream observed a retention fault (no DS entry ever happened)")
	}
}

// TestRandomSpecValidation rejects an empty stream and fills defaults.
func TestRandomSpecValidation(t *testing.T) {
	if _, err := RunRandom(RandomSpec{}, sram.New()); err == nil {
		t.Error("zero-op spec accepted")
	}
	s, err := RandomSpec{Ops: 10}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "random(10)" || s.ProbWrite != 0.5 || s.Prob1 != 0.5 || s.Dwell != DefaultDwell {
		t.Errorf("defaults not filled: %+v", s)
	}
}
