package march

import (
	"fmt"
	"math/rand"
)

// RandomSpec configures a constrained-random memory test: a seeded
// stream of randomized poke/expect operations in the style of the
// `fault` framework's SRAMTester loops — write a random word to a
// random address, read a random address and expect the value a
// fault-free memory would hold. A shadow copy of the expected contents
// supplies the per-operation expectation, so any fault that corrupts a
// subsequently read cell is flagged exactly where it is observed.
//
// The run is a pure function of the spec: the same (Seed, Ops, knobs)
// replays the identical operation stream against any Memory, which
// makes random escapes reproducible — report the spec, not the trace.
// Deterministic March tests and the random harness are complementary:
// March guarantees class coverage by construction, the random stream
// estimates what an unconstrained workload would catch (internal/
// faultmap reports both side by side).
type RandomSpec struct {
	// Name labels the run's Report (default "random(N)").
	Name string
	// Ops is the number of poke/expect operations after the randomized
	// initialization pass; must be >= 1.
	Ops int
	// Seed drives the operation stream (addresses, data, op mix).
	Seed int64
	// ProbWrite is the probability an operation is a write (default 0.5).
	ProbWrite float64
	// Prob1 is the per-bit probability of a '1' in random data words —
	// the randomized data background (default 0.5).
	Prob1 float64
	// DwellEvery inserts a deep-sleep entry/wake pair every DwellEvery
	// operations, sensitizing retention faults mid-stream (0 disables;
	// the paper's DRF_DS needs at least one dwell to ever be observed).
	DwellEvery int
	// Dwell is the deep-sleep residence time of each entry (0 selects
	// DefaultDwell).
	Dwell float64
}

// WithDefaults validates the spec and fills the defaulted fields in —
// exported so corpus evaluators (internal/faultmap) can resolve the
// run's Name without executing it.
func (s RandomSpec) WithDefaults() (RandomSpec, error) {
	if s.Ops < 1 {
		return s, fmt.Errorf("march: random spec needs ops >= 1 (got %d)", s.Ops)
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("random(%d)", s.Ops)
	}
	if s.ProbWrite <= 0 || s.ProbWrite >= 1 {
		s.ProbWrite = 0.5
	}
	if s.Prob1 <= 0 || s.Prob1 >= 1 {
		s.Prob1 = 0.5
	}
	if s.Dwell <= 0 {
		s.Dwell = DefaultDwell
	}
	return s, nil
}

// randWord draws one data word with independent P(bit=1) = prob1. The
// balanced default takes one rng draw; biased backgrounds pay 64.
func randWord(rng *rand.Rand, prob1 float64) uint64 {
	if prob1 == 0.5 {
		return rng.Uint64()
	}
	var w uint64
	for b := 0; b < 64; b++ {
		if rng.Float64() < prob1 {
			w |= 1 << uint(b)
		}
	}
	return w
}

// RunRandom executes the constrained-random test against the memory
// with default capture options. The memory must be in ACT mode.
func RunRandom(spec RandomSpec, m Memory) (Report, error) {
	return RunRandomWith(spec, m, RunOptions{})
}

// RunRandomWith is RunRandom with explicit capture options. Only the
// failure-capture fields apply (CaptureAll, FailureCap, OnFailure);
// Background and AddrMap are the randomized stream's own business and
// are ignored. Failure.Element records the operation index within the
// stream (the initialization pass is element -1), OpIndex is 0.
func RunRandomWith(spec RandomSpec, m Memory, opts RunOptions) (Report, error) {
	spec, err := spec.WithDefaults()
	if err != nil {
		return Report{}, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := m.Size()
	rep := Report{Test: Test{Name: spec.Name, Dwell: spec.Dwell}}
	failCap := opts.failureCap()
	record := func(f Failure) {
		rep.TotalMiscompares++
		if opts.OnFailure != nil {
			opts.OnFailure(f)
		}
		if len(rep.Failures) < failCap {
			rep.Failures = append(rep.Failures, f)
		} else {
			rep.DroppedFailures++
		}
	}

	// Initialization pass: every word gets a fresh random background, so
	// the expected contents are themselves a randomized pattern (not a
	// solid value some fault classes never disturb).
	shadow := make([]uint64, n)
	for addr := 0; addr < n; addr++ {
		w := randWord(rng, spec.Prob1)
		if err := m.Write(addr, w); err != nil {
			return rep, fmt.Errorf("march: %s init @%d: %w", spec.Name, addr, err)
		}
		shadow[addr] = w
		rep.Ops++
	}

	dwells := 0
	for i := 0; i < spec.Ops; i++ {
		if spec.DwellEvery > 0 && i%spec.DwellEvery == spec.DwellEvery-1 {
			if err := m.EnterDS(spec.Dwell); err != nil {
				return rep, fmt.Errorf("march: %s op %d DSM: %w", spec.Name, i, err)
			}
			if err := m.WakeUp(); err != nil {
				return rep, fmt.Errorf("march: %s op %d WUP: %w", spec.Name, i, err)
			}
			dwells++
		}
		addr := rng.Intn(n)
		if rng.Float64() < spec.ProbWrite {
			w := randWord(rng, spec.Prob1)
			if err := m.Write(addr, w); err != nil {
				return rep, fmt.Errorf("march: %s op %d write @%d: %w", spec.Name, i, addr, err)
			}
			shadow[addr] = w
		} else {
			got, err := m.Read(addr)
			if err != nil {
				return rep, fmt.Errorf("march: %s op %d read @%d: %w", spec.Name, i, addr, err)
			}
			if got != shadow[addr] {
				record(Failure{Element: i, OpIndex: 0, Addr: addr, Expected: shadow[addr], Got: got})
			}
		}
		rep.Ops++
	}
	rep.TestTime = float64(rep.Ops)*cycleTimeOf(m) + float64(dwells)*(spec.Dwell+cycleTimeOf(m))
	return rep, nil
}
