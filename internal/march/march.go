// Package march implements March memory tests in the notation of van de
// Goor (paper ref [10]), extended with the power-mode operations of the
// paper's Section V: DSM (switch from ACT to deep-sleep mode), LSM
// (switch to light-sleep, used by the earlier March LZ), and WUP (the
// wake-up phase back to ACT). It provides the test structures, a library
// of standard algorithms plus the paper's March m-LZ, an executor over a
// Memory device, and test-length/test-time accounting.
package march

import (
	"fmt"
	"strings"
)

// OpKind is a single March operation.
type OpKind int

// March operations: cell operations (applied per address inside an
// element) and mode operations (standalone elements).
const (
	R0  OpKind = iota // read, expect 0
	R1                // read, expect 1
	W0                // write 0
	W1                // write 1
	DSM               // ACT -> deep-sleep (regulator on), dwell, stay in DS
	LSM               // ACT -> light-sleep (peripherals gated, array at VDD)
	WUP               // wake-up phase back to ACT
)

// String implements fmt.Stringer using the paper's notation.
func (k OpKind) String() string {
	return [...]string{"r0", "r1", "w0", "w1", "DSM", "LSM", "WUP"}[k]
}

// IsModeOp reports whether the op is a power-mode transition.
func (k OpKind) IsModeOp() bool { return k == DSM || k == LSM || k == WUP }

// Order is the addressing order of a March element.
type Order int

// Address orders: ⇑ ascending, ⇓ descending, ⇕ either (executed ascending).
const (
	Up Order = iota
	Down
	Any
)

// String implements fmt.Stringer with the conventional arrows.
func (o Order) String() string {
	return [...]string{"⇑", "⇓", "⇕"}[o]
}

// Element is one March element: an address order with a sequence of cell
// operations, or a single standalone mode operation.
type Element struct {
	Order Order
	Ops   []OpKind
}

// IsMode reports whether the element is a standalone mode operation.
func (e Element) IsMode() bool {
	return len(e.Ops) == 1 && e.Ops[0].IsModeOp()
}

// String renders "⇑(r1,w0,r0)" or "DSM".
func (e Element) String() string {
	if e.IsMode() {
		return e.Ops[0].String()
	}
	parts := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		parts[i] = op.String()
	}
	return fmt.Sprintf("%s(%s)", e.Order, strings.Join(parts, ","))
}

// Test is a complete March test.
type Test struct {
	Name  string
	Elems []Element
	// Dwell is the residence time of each DSM/LSM operation (the paper's
	// "DS time" column in Table III; ≥1 ms recommended).
	Dwell float64
}

// String renders the whole test in the paper's style, e.g.
// "{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}".
func (t Test) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Validate checks the structural rules: mode ops appear only as
// standalone elements, cell elements are non-empty, and every DSM/LSM is
// eventually followed by a WUP before the next cell element.
func (t Test) Validate() error {
	if len(t.Elems) == 0 {
		return fmt.Errorf("march: %s has no elements", t.Name)
	}
	awake := true
	for i, e := range t.Elems {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march: %s element %d is empty", t.Name, i)
		}
		if e.IsMode() {
			switch e.Ops[0] {
			case DSM, LSM:
				if !awake {
					return fmt.Errorf("march: %s element %d enters sleep while already asleep", t.Name, i)
				}
				awake = false
			case WUP:
				awake = true
			}
			continue
		}
		for _, op := range e.Ops {
			if op.IsModeOp() {
				return fmt.Errorf("march: %s element %d mixes mode op %s with cell ops", t.Name, i, op)
			}
		}
		if !awake {
			return fmt.Errorf("march: %s element %d performs cell ops while asleep", t.Name, i)
		}
	}
	if !awake {
		return fmt.Errorf("march: %s ends asleep (missing WUP)", t.Name)
	}
	return nil
}

// Length returns the test complexity as (perCell, constant): the test
// executes perCell·N + constant operations on a memory of N words.
// March m-LZ returns (5, 4), i.e. the paper's 5N+4.
func (t Test) Length() (perCell, constant int) {
	for _, e := range t.Elems {
		if e.IsMode() {
			constant++
		} else {
			perCell += len(e.Ops)
		}
	}
	return perCell, constant
}

// LengthFor evaluates the complexity for a memory of n words.
func (t Test) LengthFor(n int) int {
	p, c := t.Length()
	return p*n + c
}

// TestTime returns the wall-clock test time on a memory of n words with
// the given access cycle time: cell operations take one cycle each, every
// sleep entry costs its dwell, and each WUP costs one cycle.
func (t Test) TestTime(n int, cycle float64) float64 {
	total := 0.0
	for _, e := range t.Elems {
		if e.IsMode() {
			switch e.Ops[0] {
			case DSM, LSM:
				total += t.Dwell
			case WUP:
				total += cycle
			}
			continue
		}
		total += float64(len(e.Ops)) * float64(n) * cycle
	}
	return total
}

// helpers to build elements tersely in the algorithm library.
func el(o Order, ops ...OpKind) Element { return Element{Order: o, Ops: ops} }
func mode(op OpKind) Element            { return Element{Order: Any, Ops: []OpKind{op}} }
