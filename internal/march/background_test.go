package march

import (
	"testing"

	cellpkg "sramtest/internal/cell"
	"sramtest/internal/fault"
	"sramtest/internal/process"
	"sramtest/internal/sram"
)

// fakeMem is a minimal March memory that records the visit order.
type fakeMem struct {
	data   []uint64
	visits []int
	asleep bool
}

func newTestMemory() *fakeMem { return &fakeMem{data: make([]uint64, 64)} }

func (f *fakeMem) Size() int { return len(f.data) }
func (f *fakeMem) Read(a int) (uint64, error) {
	f.visits = append(f.visits, a)
	return f.data[a], nil
}
func (f *fakeMem) Write(a int, v uint64) error {
	f.visits = append(f.visits, a)
	f.data[a] = v
	return nil
}
func (f *fakeMem) EnterDS(float64) error { f.asleep = true; return nil }
func (f *fakeMem) EnterLS(float64) error { f.asleep = true; return nil }
func (f *fakeMem) WakeUp() error         { f.asleep = false; return nil }

func TestRunWithBackground(t *testing.T) {
	m := newTestMemory()
	bg := func(addr int) uint64 {
		if addr%2 == 1 {
			return ^uint64(0)
		}
		return 0
	}
	tst, _ := ParseTest("bg", "⇕(w0); ⇑(r0,w1); ⇓(r1)")
	rep, err := RunWith(tst, m, RunOptions{Background: bg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("clean background run failed: %v", rep.Failures)
	}
	// After the final w1, every word holds the complement background.
	for a, v := range m.data {
		if v != ^bg(a) {
			t.Fatalf("addr %d holds %x, want %x", a, v, ^bg(a))
		}
	}
}

func TestRunWithAddrMap(t *testing.T) {
	m := newTestMemory()
	rev := func(i int) int { return m.Size() - 1 - i }
	tst, _ := ParseTest("rev", "⇑(w0)")
	if _, err := RunWith(tst, m, RunOptions{AddrMap: rev}); err != nil {
		t.Fatal(err)
	}
	if m.visits[0] != m.Size()-1 || m.visits[len(m.visits)-1] != 0 {
		t.Errorf("mapped order wrong: first=%d last=%d", m.visits[0], m.visits[len(m.visits)-1])
	}
}

func TestCheckerboardPaintsPhysicalPattern(t *testing.T) {
	s := sram.New()
	tst, _ := ParseTest("init", "⇕(w0)")
	if _, err := RunWith(tst, s, RunOptions{Background: sram.CheckerboardBackground}); err != nil {
		t.Fatal(err)
	}
	// Spot-check: every cell holds (row+col)&1.
	for _, probe := range []struct{ addr, bit int }{{0, 0}, {1, 0}, {8, 0}, {100, 17}, {4095, 63}} {
		loc := sram.LocateCell(probe.addr, probe.bit)
		want := (loc.Row+loc.Col)&1 == 1
		if got := s.RawBit(probe.addr, probe.bit); got != want {
			t.Errorf("cell (%d,%d) at row %d col %d holds %v, want %v",
				probe.addr, probe.bit, loc.Row, loc.Col, got, want)
		}
	}
}

func TestBackgroundsAreAdjacentAware(t *testing.T) {
	// Under checkerboard, physically adjacent cells differ; under solid
	// they are equal. (The reason multi-background BIST exists.)
	for _, probe := range []struct{ addr, bit int }{{0, 0}, {55, 12}} {
		loc := sram.LocateCell(probe.addr, probe.bit)
		if loc.Col+1 >= sram.Cols {
			continue
		}
		naddr, nbit := sram.CellAt(sram.CellLocation{Row: loc.Row, Col: loc.Col + 1})
		cb := sram.CheckerboardBackground
		a := cb(probe.addr)>>uint(probe.bit)&1 == 1
		b := cb(naddr)>>uint(nbit)&1 == 1
		if a == b {
			t.Errorf("checkerboard: neighbours (%d,%d)/(%d,%d) equal", probe.addr, probe.bit, naddr, nbit)
		}
	}
}

func TestRowAndColStripes(t *testing.T) {
	// Row stripes: whole words are solid (a word lives in one row).
	if v := sram.RowStripeBackground(0); v != 0 {
		t.Errorf("row 0 stripe = %x", v)
	}
	if v := sram.RowStripeBackground(8); v != ^uint64(0) {
		t.Errorf("row 1 stripe = %x", v)
	}
	// Column stripes: within a word, adjacent addresses complement.
	a, b := sram.ColStripeBackground(0), sram.ColStripeBackground(1)
	if a == b {
		t.Error("column stripes should differ between adjacent addresses")
	}
}

func TestFastRowOrderIsPermutation(t *testing.T) {
	seen := make([]bool, sram.Words)
	for i := 0; i < sram.Words; i++ {
		a := sram.FastRowOrder(i)
		if a < 0 || a >= sram.Words || seen[a] {
			t.Fatalf("FastRowOrder not a bijection at %d -> %d", i, a)
		}
		seen[a] = true
	}
	// Consecutive steps move down the rows within one column group.
	r0 := sram.LocateCell(sram.FastRowOrder(0), 0).Row
	r1 := sram.LocateCell(sram.FastRowOrder(1), 0).Row
	if r1 != r0+1 {
		t.Errorf("fast-row order should advance the word line: %d -> %d", r0, r1)
	}
}

func TestIntraWordCouplingNeedsWordBackgrounds(t *testing.T) {
	// A coupling between two bits of the SAME word: every word write
	// updates both bits simultaneously, so under a solid background the
	// aggressor's up-transition forces the victim to the value it was
	// being written anyway — the fault is masked. The 0xAAAA… word
	// background writes the two bits with different values and exposes
	// it. This is why word-oriented BIST needs log2(B)+1 backgrounds.
	mkFault := func() fault.Fault {
		return fault.Fault{
			Kind:      fault.CFid,
			Aggressor: fault.Cell{Addr: 100, Bit: 4}, // even bit: background 0
			Victim:    fault.Cell{Addr: 100, Bit: 5}, // odd bit under 0xAA…: 1
			Val:       true,                          // forced high on aggressor 0->1
		}
	}
	run := func(bg BackgroundFunc) bool {
		s := sram.New()
		fault.NewInjector(mkFault()).Attach(s)
		rep, err := RunWith(MarchCMinus(), s, RunOptions{Background: bg})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Detected()
	}
	if run(nil) {
		t.Error("solid background should mask the intra-word coupling")
	}
	aa := WordBackground(1, 64)
	if !run(func(int) uint64 { return aa }) {
		t.Error("0xAAAA… background should expose the intra-word coupling")
	}
}

func TestWordBackgrounds(t *testing.T) {
	if got := WordBackground(0, 64); got != 0 {
		t.Errorf("bg0 = %x", got)
	}
	if got := WordBackground(1, 64); got != 0xAAAAAAAAAAAAAAAA {
		t.Errorf("bg1 = %x", got)
	}
	if got := WordBackground(2, 64); got != 0xCCCCCCCCCCCCCCCC {
		t.Errorf("bg2 = %x", got)
	}
	if got := WordBackground(6, 64); got != 0xFFFFFFFF00000000 {
		t.Errorf("bg6 = %x", got)
	}
	bgs := StandardWordBackgrounds(64)
	if len(bgs) != 7 {
		t.Errorf("64-bit words need 7 backgrounds, got %d", len(bgs))
	}
}

func TestRunAllBackgrounds(t *testing.T) {
	// The merged run must catch the intra-word coupling that the solid
	// background alone misses.
	fresh := func() Memory {
		s := sram.New()
		fault.NewInjector(fault.Fault{
			Kind:      fault.CFid,
			Aggressor: fault.Cell{Addr: 7, Bit: 0},
			Victim:    fault.Cell{Addr: 7, Bit: 1},
			Val:       true,
		}).Attach(s)
		return s
	}
	rep, err := RunAllBackgrounds(MarchCMinus(), fresh, StandardWordBackgrounds(64))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected() {
		t.Error("multi-background run should detect the intra-word coupling")
	}
	if rep.Ops != 7*10*sram.Words {
		t.Errorf("merged ops %d, want 7 runs × 10N", rep.Ops)
	}
}

// cellDRV evaluates the static DRV of a variation at a condition (test
// helper shared by the dwell-gating test).
func cellDRV(t *testing.T, v process.Variation, cond process.Condition) float64 {
	t.Helper()
	return cellpkg.New(v, cond).DRV1()
}
