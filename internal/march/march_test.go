package march

import (
	"math"
	"strings"
	"testing"

	"sramtest/internal/fault"
	"sramtest/internal/process"
	"sramtest/internal/sram"
)

func TestMLZNotationMatchesPaper(t *testing.T) {
	got := MarchMLZ().String()
	want := "{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}"
	if got != want {
		t.Errorf("March m-LZ notation:\n got %s\nwant %s", got, want)
	}
}

func TestMLZLength(t *testing.T) {
	// Paper §V: "March m-LZ has a length of 5N+4".
	p, c := MarchMLZ().Length()
	if p != 5 || c != 4 {
		t.Errorf("length %dN+%d, want 5N+4", p, c)
	}
	if got := MarchMLZ().LengthFor(4096); got != 5*4096+4 {
		t.Errorf("LengthFor(4096) = %d", got)
	}
}

func TestLibraryLengths(t *testing.T) {
	want := map[string]int{"MATS+": 5, "March C-": 10, "March SS": 22, "March LZ": 5, "March m-LZ": 5}
	for _, tst := range Library() {
		p, _ := tst.Length()
		if p != want[tst.Name] {
			t.Errorf("%s per-cell length %d, want %d", tst.Name, p, want[tst.Name])
		}
		if err := tst.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tst.Name, err)
		}
	}
}

func TestValidateRejectsBadStructures(t *testing.T) {
	bad := []Test{
		{Name: "empty-elem", Elems: []Element{{Order: Up, Ops: nil}}},
		{Name: "mixed", Elems: []Element{{Order: Up, Ops: []OpKind{R0, DSM}}}},
		{Name: "ops-asleep", Elems: []Element{mode(DSM), el(Up, R0)}},
		{Name: "double-sleep", Elems: []Element{mode(DSM), mode(LSM)}},
		{Name: "ends-asleep", Elems: []Element{el(Any, W0), mode(DSM)}},
	}
	for _, tst := range bad {
		if err := tst.Validate(); err == nil {
			t.Errorf("%s should be invalid", tst.Name)
		}
	}
}

func TestTestTimeAccounting(t *testing.T) {
	tst := MarchMLZ()
	n := 4096
	got := tst.TestTime(n, 10e-9)
	want := 5*float64(n)*10e-9 + 2*tst.Dwell + 2*10e-9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("test time %g, want %g", got, want)
	}
}

func TestRunCleanMemoryPasses(t *testing.T) {
	for _, tst := range Library() {
		s := sram.New()
		rep, err := Run(tst, s)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if rep.Detected() {
			t.Errorf("%s flags failures on a clean memory: %v", tst.Name, rep.Failures)
		}
		if p, _ := tst.Length(); rep.Ops != p*s.Size() {
			t.Errorf("%s executed %d ops, want %d", tst.Name, rep.Ops, p*s.Size())
		}
	}
}

// runWithFaults executes a test on an SRAM with injected faults.
func runWithFaults(t *testing.T, tst Test, faults ...fault.Fault) Report {
	t.Helper()
	s := sram.New()
	fault.NewInjector(faults...).Attach(s)
	rep, err := Run(tst, s)
	if err != nil {
		t.Fatalf("%s: %v", tst.Name, err)
	}
	return rep
}

func TestAllTestsDetectStuckAt(t *testing.T) {
	for _, tst := range Library() {
		for _, k := range []fault.Kind{fault.SAF0, fault.SAF1} {
			rep := runWithFaults(t, tst, fault.Fault{Kind: k, Victim: fault.Cell{Addr: 1234, Bit: 17}})
			if !rep.Detected() {
				t.Errorf("%s misses %s", tst.Name, k)
			}
		}
	}
}

func TestTransitionFaultCoverage(t *testing.T) {
	tfDown := fault.Fault{Kind: fault.TFDown, Victim: fault.Cell{Addr: 99, Bit: 5}}
	// MATS+ never reads after its final w0: TF-down escapes.
	if rep := runWithFaults(t, MATSPlus(), tfDown); rep.Detected() {
		t.Error("MATS+ should miss TF-down (no read after the last w0)")
	}
	// March C- reads after both transitions: detected.
	if rep := runWithFaults(t, MarchCMinus(), tfDown); !rep.Detected() {
		t.Error("March C- should detect TF-down")
	}
	tfUp := fault.Fault{Kind: fault.TFUp, Victim: fault.Cell{Addr: 99, Bit: 5}}
	if rep := runWithFaults(t, MarchCMinus(), tfUp); !rep.Detected() {
		t.Error("March C- should detect TF-up")
	}
}

func TestWriteDisturbCoverage(t *testing.T) {
	wdf := fault.Fault{Kind: fault.WDF, Victim: fault.Cell{Addr: 7, Bit: 0}}
	// March SS performs non-transition writes followed by reads.
	if rep := runWithFaults(t, MarchSS(), wdf); !rep.Detected() {
		t.Error("March SS should detect WDF")
	}
	// March C- has no guaranteed non-transition write: with the victim
	// initialized to '1' (unknown-initial-state analysis), every C-
	// write is a transition and WDF escapes.
	s := sram.New()
	s.RawSetBit(7, 0, true)
	fault.NewInjector(wdf).Attach(s)
	rep, err := Run(MarchCMinus(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Error("March C- should miss WDF under unknown initial state")
	}
}

func TestReadFaultCoverage(t *testing.T) {
	for _, k := range []fault.Kind{fault.RDF, fault.IRF} {
		f := fault.Fault{Kind: k, Victim: fault.Cell{Addr: 11, Bit: 60}}
		if rep := runWithFaults(t, MarchCMinus(), f); !rep.Detected() {
			t.Errorf("March C- should detect %s", k)
		}
	}
}

func TestCouplingFaultCoverage(t *testing.T) {
	cases := []fault.Fault{
		{Kind: fault.CFin, Aggressor: fault.Cell{Addr: 10, Bit: 3}, Victim: fault.Cell{Addr: 20, Bit: 3}, Val: true},
		{Kind: fault.CFin, Aggressor: fault.Cell{Addr: 20, Bit: 3}, Victim: fault.Cell{Addr: 10, Bit: 3}, Val: true},
		{Kind: fault.CFid, Aggressor: fault.Cell{Addr: 100, Bit: 0}, Victim: fault.Cell{Addr: 200, Bit: 0}, Val: true},
		{Kind: fault.CFid, Aggressor: fault.Cell{Addr: 200, Bit: 0}, Victim: fault.Cell{Addr: 100, Bit: 0}, Val: false},
		{Kind: fault.CFst, Aggressor: fault.Cell{Addr: 50, Bit: 1}, Victim: fault.Cell{Addr: 60, Bit: 1}, AggVal: true, Val: true},
	}
	for _, f := range cases {
		if rep := runWithFaults(t, MarchCMinus(), f); !rep.Detected() {
			t.Errorf("March C- should detect %s", f)
		}
	}
}

func TestPowerGatingFaultCoverage(t *testing.T) {
	pgf := fault.Fault{Kind: fault.PGF, Victim: fault.Cell{Addr: 500, Bit: 33}, Val: false}
	// Both LZ and m-LZ exercise power gating: detected.
	if rep := runWithFaults(t, MarchLZ(), pgf); !rep.Detected() {
		t.Error("March LZ should detect the power-gating fault")
	}
	if rep := runWithFaults(t, MarchMLZ(), pgf); !rep.Detected() {
		t.Error("March m-LZ should detect the power-gating fault")
	}
	// Tests without sleep entries miss it.
	for _, tst := range []Test{MATSPlus(), MarchCMinus(), MarchSS()} {
		if rep := runWithFaults(t, tst, pgf); rep.Detected() {
			t.Errorf("%s should miss the power-gating fault", tst.Name)
		}
	}
}

// drfSRAM returns an SRAM whose regulator-supplied rail sits below the
// DRV of one worst-case cell (but above the symmetric cells' DRV).
func drfSRAM(t *testing.T) *sram.SRAM {
	t.Helper()
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.5))
	// Degrades stored '1' (CS-style); its mirror twin degrades stored '0'.
	s.RegisterVariation(321, 9, process.WorstCase1())
	s.RegisterVariation(322, 9, process.WorstCase1().Mirror())
	return s
}

func TestMLZDetectsDRFDS(t *testing.T) {
	rep, err := Run(MarchMLZ(), drfSRAM(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected() {
		t.Fatal("March m-LZ must detect DRF_DS — the paper's headline property")
	}
	// Both polarities must be caught: the '1' loss in ME4 (element 3)
	// and the '0' loss in ME7 (element 6).
	seen := map[int]bool{}
	for _, f := range rep.Failures {
		seen[f.Element] = true
	}
	if !seen[3] || !seen[6] {
		t.Errorf("expected detections in ME4 and ME7, failures: %v", rep.Failures)
	}
}

func TestBaselinesMissDRFDS(t *testing.T) {
	// March LZ sleeps in LIGHT sleep (array at VDD): no DRF_DS
	// sensitization. March C- never sleeps at all.
	for _, tst := range []Test{MarchLZ(), MarchCMinus(), MATSPlus(), MarchSS()} {
		rep, err := Run(tst, drfSRAM(t))
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if rep.Detected() {
			t.Errorf("%s should miss DRF_DS (it never enters deep sleep)", tst.Name)
		}
	}
}

func TestFailureHelpers(t *testing.T) {
	f := Failure{Element: 3, OpIndex: 0, Addr: 0x12, Expected: Data1, Got: Data1 &^ (1 << 9)}
	if b := f.Bits(); len(b) != 1 || b[0] != 9 {
		t.Errorf("Bits() = %v", b)
	}
	if !strings.Contains(f.String(), "ME4") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestFailureRecordingCapped(t *testing.T) {
	// A whole-array wipe yields thousands of miscompares; recording must
	// cap while the count keeps going.
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.01))
	rep, err := Run(MarchMLZ(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) > 64 {
		t.Errorf("recorded %d failures, cap is 64", len(rep.Failures))
	}
	if rep.TotalMiscompares <= len(rep.Failures) {
		t.Errorf("total %d should exceed the recorded cap", rep.TotalMiscompares)
	}
}

func TestCaptureAllRecordsEveryFailure(t *testing.T) {
	// The same whole-array wipe with CaptureAll set must record every
	// miscompare, with the default pass/fail accounting unchanged.
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	fresh := func() *sram.SRAM {
		s := sram.New()
		s.SetRetention(sram.NewThresholdRetention(cond, 0.01))
		return s
	}
	full, err := RunWith(MarchMLZ(), fresh(), RunOptions{CaptureAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Failures) != full.TotalMiscompares {
		t.Errorf("CaptureAll recorded %d of %d miscompares", len(full.Failures), full.TotalMiscompares)
	}
	if len(full.Failures) <= 64 {
		t.Errorf("expected a whole-array failure map, got %d records", len(full.Failures))
	}
	capped, err := Run(MarchMLZ(), fresh())
	if err != nil {
		t.Fatal(err)
	}
	if capped.TotalMiscompares != full.TotalMiscompares || capped.Detected() != full.Detected() {
		t.Errorf("CaptureAll changed pass/fail accounting: %d vs %d miscompares",
			full.TotalMiscompares, capped.TotalMiscompares)
	}
}

func TestDownOrderActuallyDescends(t *testing.T) {
	// An aggressor at a HIGHER address coupling into a LOWER victim is
	// caught by the descending element of March C-; verify order plumbing
	// by checking the failing element index.
	f := fault.Fault{Kind: fault.CFid, Aggressor: fault.Cell{Addr: 3000, Bit: 2}, Victim: fault.Cell{Addr: 100, Bit: 2}, Val: true}
	rep := runWithFaults(t, MarchCMinus(), f)
	if !rep.Detected() {
		t.Fatal("March C- must detect the up-coupling CFid")
	}
}

func TestOpKindAndOrderStrings(t *testing.T) {
	if R0.String() != "r0" || W1.String() != "w1" || DSM.String() != "DSM" {
		t.Error("OpKind strings wrong")
	}
	if Up.String() != "⇑" || Down.String() != "⇓" || Any.String() != "⇕" {
		t.Error("Order strings wrong")
	}
	if !DSM.IsModeOp() || R0.IsModeOp() {
		t.Error("IsModeOp wrong")
	}
}

func TestDwellLengthGatesDetection(t *testing.T) {
	// The paper's §V DS-time argument at the March level: at cold
	// conditions a marginal cell flips so slowly that March m-LZ with a
	// too-short DS dwell misses the fault a 5 ms dwell catches.
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: -30}
	v := process.Variation{process.MPcc1: -3, process.MNcc1: -3}
	drv := cellDRV(t, v, cond)

	run := func(dwell float64) bool {
		s := sram.New()
		s.SetRetention(sram.NewFixedRailRetention(cond, drv-0.005))
		s.RegisterVariation(77, 7, v)
		tst := MarchMLZ()
		tst.Dwell = dwell
		rep, err := Run(tst, s)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Detected()
	}
	if run(100e-6) {
		t.Error("a 100µs dwell should be too short for the ≈1ms flip")
	}
	if !run(5e-3) {
		t.Error("a 5ms dwell must catch the marginal cell")
	}
}

func TestMATSPlusDetectsDecoderFaults(t *testing.T) {
	// MATS+ exists to detect address-decoder faults (van de Goor): all
	// four AF classes must be caught.
	for _, f := range []fault.DecoderFault{
		{Kind: fault.AFNoAccess, A: 123},
		{Kind: fault.AFWrongAccess, A: 123, B: 3210},
		{Kind: fault.AFMultiAccess, A: 123, B: 3210},
		{Kind: fault.AFShared, A: 123, B: 3210},
	} {
		s := sram.New()
		fault.NewInjector().AttachDecoderFault(s, f)
		rep, err := Run(MATSPlus(), s)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !rep.Detected() {
			t.Errorf("MATS+ misses %s", f)
		}
	}
	// And every richer test in the library catches them too.
	for _, tst := range Library() {
		s := sram.New()
		fault.NewInjector().AttachDecoderFault(s, fault.DecoderFault{Kind: fault.AFWrongAccess, A: 1, B: 2})
		rep, err := Run(tst, s)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !rep.Detected() {
			t.Errorf("%s misses the wrong-access decoder fault", tst.Name)
		}
	}
}
