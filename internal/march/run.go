package march

import (
	"fmt"
	"math/bits"
)

// Memory is the device a March test runs against. sram.SRAM implements it.
type Memory interface {
	Size() int
	Read(addr int) (uint64, error)
	Write(addr int, v uint64) error
	EnterDS(dwell float64) error
	EnterLS(dwell float64) error
	WakeUp() error
}

// Background data values: March w0/w1 write the all-zero / all-one
// pattern across the 64-bit word so every cell sees the intended value.
const (
	Data0 uint64 = 0
	Data1 uint64 = ^uint64(0)
)

// Failure records one miscompare observed during a run.
type Failure struct {
	Element  int    // index into Test.Elems
	OpIndex  int    // index into the element's ops
	Addr     int    // failing word address
	Expected uint64 // expected background
	Got      uint64 // observed word
}

// Bits returns the failing bit positions of the miscompare.
func (f Failure) Bits() []int {
	var out []int
	diff := f.Expected ^ f.Got
	for diff != 0 {
		b := bits.TrailingZeros64(diff)
		out = append(out, b)
		diff &^= 1 << uint(b)
	}
	return out
}

// String renders "ME4 op1 @0x12: expected ffffffffffffffff got fffffffffffffffe".
func (f Failure) String() string {
	return fmt.Sprintf("ME%d op%d @0x%x: expected %016x got %016x", f.Element+1, f.OpIndex, f.Addr, f.Expected, f.Got)
}

// Report summarizes a March run.
type Report struct {
	Test     Test
	Failures []Failure
	Ops      int     // cell operations executed
	TestTime float64 // accounted wall-clock test time (s)
	// TotalMiscompares counts every failing read; the failure cap only
	// bounds recording, the run continues counting.
	TotalMiscompares int
	// DroppedFailures counts miscompares beyond the failure cap that
	// were counted but not recorded in Failures (the capture overflow).
	DroppedFailures int
}

// Detected reports whether the run flagged at least one fault.
func (r Report) Detected() bool { return r.TotalMiscompares > 0 }

// Overflowed reports whether the failure capture dropped records.
func (r Report) Overflowed() bool { return r.DroppedFailures > 0 }

// maxRecordedFailures bounds the memory used by heavily failing runs.
const maxRecordedFailures = 64

// CaptureLimit is the hard ceiling of the CaptureAll fail capture. A
// heavily failing array-scale run (a 4K×64 fault map where most cells
// miscompare) would otherwise grow the failure list into the millions;
// beyond the limit the run keeps counting (TotalMiscompares,
// DroppedFailures) but stops recording. Streaming consumers that need
// every miscompare observe them through RunOptions.OnFailure instead of
// the recorded list.
const CaptureLimit = 1 << 14

// Run executes the test against the memory with the solid zero background
// and identity address order. The memory must be in ACT mode. Execution
// continues past miscompares (a production BIST would log and continue,
// and the coverage experiments need the full failure map). See RunWith
// for data backgrounds and address mapping.
func Run(t Test, m Memory) (Report, error) {
	return RunWith(t, m, RunOptions{})
}

// cycleTimer lets devices report their access cycle time for test-time
// accounting; devices without one use the default 10 ns.
type cycleTimer interface{ Cycle() float64 }

func cycleTimeOf(m Memory) float64 {
	if ct, ok := m.(cycleTimer); ok {
		return ct.Cycle()
	}
	return 10e-9
}
