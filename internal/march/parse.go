package march

import (
	"fmt"
	"strings"
)

// ParseTest parses the van-de-Goor notation produced by Test.String, so
// users can define their own algorithms on the command line or in config
// files:
//
//	{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}
//
// ASCII aliases are accepted for the order arrows: "ud" or "m" for ⇕,
// "up" or "u" for ⇑, "dn"/"down"/"d" for ⇓. The surrounding braces are
// optional. The dwell of DSM/LSM operations defaults to DefaultDwell.
func ParseTest(name, src string) (Test, error) {
	t := Test{Name: name, Dwell: DefaultDwell}
	src = strings.TrimSpace(src)
	src = strings.TrimPrefix(src, "{")
	src = strings.TrimSuffix(src, "}")
	for _, raw := range strings.Split(src, ";") {
		tok := strings.TrimSpace(raw)
		if tok == "" {
			continue
		}
		e, err := parseElement(tok)
		if err != nil {
			return Test{}, fmt.Errorf("march: %q: %w", tok, err)
		}
		t.Elems = append(t.Elems, e)
	}
	if len(t.Elems) == 0 {
		return Test{}, fmt.Errorf("march: empty test %q", src)
	}
	if err := t.Validate(); err != nil {
		return Test{}, err
	}
	return t, nil
}

func parseElement(tok string) (Element, error) {
	switch strings.ToUpper(tok) {
	case "DSM":
		return mode(DSM), nil
	case "LSM":
		return mode(LSM), nil
	case "WUP":
		return mode(WUP), nil
	}
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return Element{}, fmt.Errorf("expected order(ops...) or a mode op")
	}
	order, err := parseOrder(strings.TrimSpace(tok[:open]))
	if err != nil {
		return Element{}, err
	}
	var ops []OpKind
	for _, o := range strings.Split(tok[open+1:len(tok)-1], ",") {
		op, err := parseOp(strings.TrimSpace(o))
		if err != nil {
			return Element{}, err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return Element{}, fmt.Errorf("element has no operations")
	}
	return Element{Order: order, Ops: ops}, nil
}

func parseOrder(s string) (Order, error) {
	switch s {
	case "⇑", "up", "u":
		return Up, nil
	case "⇓", "dn", "down", "d":
		return Down, nil
	case "⇕", "ud", "m", "":
		return Any, nil
	}
	return Any, fmt.Errorf("unknown address order %q", s)
}

func parseOp(s string) (OpKind, error) {
	switch strings.ToLower(s) {
	case "r0":
		return R0, nil
	case "r1":
		return R1, nil
	case "w0":
		return W0, nil
	case "w1":
		return W1, nil
	}
	return R0, fmt.Errorf("unknown operation %q", s)
}
