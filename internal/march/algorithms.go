package march

// DefaultDwell is the deep-sleep residence time the paper recommends for
// DRF_DS sensitization (Table III "DS time" column).
const DefaultDwell = 1e-3 // s

// MATSPlus returns MATS+ = {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}, the classic 5N
// test covering stuck-at and address-decoder faults (van de Goor).
func MATSPlus() Test {
	return Test{
		Name: "MATS+",
		Elems: []Element{
			el(Any, W0),
			el(Up, R0, W1),
			el(Down, R1, W0),
		},
	}
}

// MarchCMinus returns March C- =
// {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}, the 10N
// reference test for unlinked static cell and coupling faults.
func MarchCMinus() Test {
	return Test{
		Name: "March C-",
		Elems: []Element{
			el(Any, W0),
			el(Up, R0, W1),
			el(Up, R1, W0),
			el(Down, R0, W1),
			el(Down, R1, W0),
			el(Any, R0),
		},
	}
}

// MarchSS returns March SS (Hamdioui et al., paper ref [11]) =
// {⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//
//	⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}, the 22N test for all
//
// static simple RAM faults including read/write disturbs.
func MarchSS() Test {
	return Test{
		Name: "March SS",
		Elems: []Element{
			el(Any, W0),
			el(Up, R0, R0, W0, R0, W1),
			el(Up, R1, R1, W1, R1, W0),
			el(Down, R0, R0, W0, R0, W1),
			el(Down, R1, R1, W1, R1, W0),
			el(Any, R0),
		},
	}
}

// MarchLZ returns March LZ (paper ref [13]) =
// {⇕(w1); LSM; WUP; ⇑(r1,w0,r0); LSM; WUP; ⇑(r0)} — the predecessor of
// March m-LZ, targeting faulty behaviours induced by malfunctions of the
// *peripheral-circuitry* power gating: the sleep entries keep the array
// at VDD (light sleep), so it cannot sensitize regulator-induced DRF_DS.
func MarchLZ() Test {
	return Test{
		Name:  "March LZ",
		Dwell: DefaultDwell,
		Elems: []Element{
			el(Any, W1),
			mode(LSM),
			mode(WUP),
			el(Up, R1, W0, R0),
			mode(LSM),
			mode(WUP),
			el(Up, R0),
		},
	}
}

// MarchMLZ returns the paper's March m-LZ (Section V) =
// {⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}, length 5N+4:
//
//	ME1 ⇕(w1)       initialize the array with '1'
//	ME2 DSM         switch ACT→DS (sensitize DRF_DS on stored '1')
//	ME3 WUP         wake-up phase
//	ME4 ⇑(r1,w0,r0) detect lost '1's; w0/r0 sensitize/detect the
//	                peripheral power-gating faults of March LZ
//	ME5 DSM         second DS entry (sensitize DRF_DS on stored '0')
//	ME6 WUP         wake-up phase
//	ME7 ⇑(r0)       detect lost '0's
func MarchMLZ() Test {
	return Test{
		Name:  "March m-LZ",
		Dwell: DefaultDwell,
		Elems: []Element{
			el(Any, W1),
			mode(DSM),
			mode(WUP),
			el(Up, R1, W0, R0),
			mode(DSM),
			mode(WUP),
			el(Up, R0),
		},
	}
}

// Library returns the full algorithm library, baselines first.
func Library() []Test {
	return []Test{MATSPlus(), MarchCMinus(), MarchSS(), MarchLZ(), MarchMLZ()}
}

// ByName resolves a library algorithm by its exact Name, for callers
// that select tests from string-typed specs (jobs, CLIs).
func ByName(name string) (Test, bool) {
	for _, t := range Library() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}
