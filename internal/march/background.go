package march

import "fmt"

// BackgroundFunc maps a word address to its "data background": the word
// value that an r0/w0 operation means at that address. r1/w1 use the
// bitwise complement. A nil background is the solid all-zero pattern.
//
// Data backgrounds matter physically: with bit-interleaved column muxing,
// a solid word background leaves every physically adjacent cell pair at
// equal values, so inter-word coupling faults need checkerboard or stripe
// backgrounds to be sensitized (classic BIST practice; the paper's March
// m-LZ is defined on solid backgrounds, matching its DRF_DS target).
type BackgroundFunc func(addr int) uint64

// WordBackground returns the k-th standard word data background for
// B-bit words: k=0 is solid, k=1..log2(B) alternate in blocks of 2^(k-1)
// bits (0xAAAA…, 0xCCCC…, 0xF0F0…, …). Word-oriented March tests need all
// log2(B)+1 backgrounds to expose intra-word coupling faults, because a
// single write updates every bit of a word simultaneously and a solid
// pattern keeps coupled bits forever equal (van de Goor).
func WordBackground(k, bits int) uint64 {
	if k == 0 {
		return 0
	}
	block := 1 << uint(k-1)
	var w uint64
	for b := 0; b < bits; b++ {
		if (b/block)&1 == 1 {
			w |= 1 << uint(b)
		}
	}
	return w
}

// StandardWordBackgrounds returns the log2(bits)+1 background functions
// for word-oriented testing.
func StandardWordBackgrounds(bits int) []BackgroundFunc {
	n := 1
	for b := bits; b > 1; b >>= 1 {
		n++
	}
	out := make([]BackgroundFunc, n)
	for k := 0; k < n; k++ {
		w := WordBackground(k, bits)
		out[k] = func(int) uint64 { return w }
	}
	return out
}

// RunAllBackgrounds executes the test once per background and merges the
// reports (a fault is detected if any background run flags it).
func RunAllBackgrounds(t Test, fresh func() Memory, bgs []BackgroundFunc) (Report, error) {
	var merged Report
	merged.Test = t
	for _, bg := range bgs {
		rep, err := RunWith(t, fresh(), RunOptions{Background: bg})
		if err != nil {
			return merged, err
		}
		merged.Ops += rep.Ops
		merged.TestTime += rep.TestTime
		merged.TotalMiscompares += rep.TotalMiscompares
		merged.DroppedFailures += rep.DroppedFailures
		for _, f := range rep.Failures {
			if len(merged.Failures) < maxRecordedFailures {
				merged.Failures = append(merged.Failures, f)
			} else {
				merged.DroppedFailures++
			}
		}
	}
	return merged, nil
}

// RunOptions extends Run with background and address-mapping choices.
type RunOptions struct {
	// Background selects the data background (nil = solid zeros).
	Background BackgroundFunc
	// AddrMap permutes the address sequence: element step i visits
	// AddrMap(i). It must be a bijection on [0, Size). nil = identity
	// (fast-column order for the studied layout).
	AddrMap func(i int) int
	// CaptureAll raises the failure-recording cap from the default 64 to
	// CaptureLimit — the full failure map that diagnosis signatures are
	// built from (internal/diag). The capture stays bounded even on
	// array-scale fault maps: miscompares beyond the limit are counted
	// in TotalMiscompares and DroppedFailures but not recorded. Pass/
	// fail semantics (Detected, TotalMiscompares) are unchanged.
	CaptureAll bool
	// FailureCap overrides the recording cap explicitly (> 0). 0 selects
	// the default (64, or CaptureLimit under CaptureAll); values above
	// CaptureLimit are clamped to it — no option spells unbounded growth.
	FailureCap int
	// OnFailure, when non-nil, observes every miscompare as it happens,
	// including those beyond the recording cap. It is the bounded-memory
	// path for array-scale consumers (internal/faultmap accumulates
	// per-bit detection maps here without materializing the failure
	// list).
	OnFailure func(Failure)
}

// failureCap resolves the effective recording cap of the options.
func (o RunOptions) failureCap() int {
	cap := maxRecordedFailures
	if o.CaptureAll {
		cap = CaptureLimit
	}
	if o.FailureCap > 0 {
		cap = o.FailureCap
	}
	if cap > CaptureLimit {
		cap = CaptureLimit
	}
	return cap
}

// RunWith executes the test with explicit options; Run is the solid
// zero-background identity-order special case.
func RunWith(t Test, m Memory, opts RunOptions) (Report, error) {
	if err := t.Validate(); err != nil {
		return Report{}, err
	}
	bg := opts.Background
	if bg == nil {
		bg = func(int) uint64 { return 0 }
	}
	amap := opts.AddrMap
	if amap == nil {
		amap = func(i int) int { return i }
	}
	rep := Report{Test: t}
	failCap := opts.failureCap()
	n := m.Size()
	for ei, e := range t.Elems {
		if e.IsMode() {
			var err error
			switch e.Ops[0] {
			case DSM:
				err = m.EnterDS(t.Dwell)
			case LSM:
				err = m.EnterLS(t.Dwell)
			case WUP:
				err = m.WakeUp()
			}
			if err != nil {
				return rep, fmt.Errorf("march: %s element %d (%s): %w", t.Name, ei, e, err)
			}
			continue
		}
		first, last, step := 0, n-1, 1
		if e.Order == Down {
			first, last, step = n-1, 0, -1
		}
		for i := first; ; i += step {
			addr := amap(i)
			base := bg(addr)
			for oi, op := range e.Ops {
				rep.Ops++
				switch op {
				case W0, W1:
					v := base
					if op == W1 {
						v = ^base
					}
					if err := m.Write(addr, v); err != nil {
						return rep, fmt.Errorf("march: %s ME%d: %w", t.Name, ei+1, err)
					}
				case R0, R1:
					want := base
					if op == R1 {
						want = ^base
					}
					got, err := m.Read(addr)
					if err != nil {
						return rep, fmt.Errorf("march: %s ME%d: %w", t.Name, ei+1, err)
					}
					if got != want {
						rep.TotalMiscompares++
						f := Failure{Element: ei, OpIndex: oi, Addr: addr, Expected: want, Got: got}
						if opts.OnFailure != nil {
							opts.OnFailure(f)
						}
						if len(rep.Failures) < failCap {
							rep.Failures = append(rep.Failures, f)
						} else {
							rep.DroppedFailures++
						}
					}
				}
			}
			if i == last {
				break
			}
		}
	}
	rep.TestTime = t.TestTime(n, cycleTimeOf(m))
	return rep, nil
}
