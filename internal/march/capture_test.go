package march

import (
	"testing"

	"sramtest/internal/sram"
)

// saf1Array returns a 4K×64 array where every cell is stuck at 1 — the
// densest failure map a March run can produce, the regression workload
// for bounded capture. The whole-array fault is injected through the
// word-level hooks directly (a per-cell fault.Injector list would make
// the hook scan quadratic at this scale).
func saf1Array() *sram.SRAM {
	s := sram.New()
	s.SetHooks(sram.Hooks{
		StoreBit: func(_ *sram.SRAM, _, _ int, _, _ bool) bool { return true },
		ReadBit:  func(_ *sram.SRAM, _, _ int, _ bool) bool { return true },
	})
	return s
}

// TestCaptureAllBoundedOnArrayScaleFailures pins the array-scale memory
// contract of the fail capture: a 4K×64 map where every cell is stuck
// at 1 drives March SS to ~53k miscompares, and CaptureAll must record
// at most CaptureLimit of them while counting the rest in
// DroppedFailures — bounded memory instead of unbounded growth.
func TestCaptureAllBoundedOnArrayScaleFailures(t *testing.T) {
	rep, err := RunWith(MarchSS(), saf1Array(), RunOptions{CaptureAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMiscompares <= CaptureLimit {
		t.Fatalf("workload too light for the regression: %d miscompares <= CaptureLimit %d",
			rep.TotalMiscompares, CaptureLimit)
	}
	if len(rep.Failures) != CaptureLimit {
		t.Errorf("recorded %d failures, want exactly CaptureLimit %d", len(rep.Failures), CaptureLimit)
	}
	if !rep.Overflowed() {
		t.Error("overflow not flagged")
	}
	if got, want := rep.DroppedFailures, rep.TotalMiscompares-CaptureLimit; got != want {
		t.Errorf("DroppedFailures = %d, want TotalMiscompares-CaptureLimit = %d", got, want)
	}
}

// TestFailureCapOverride pins the explicit cap: recording stops at the
// cap, counting and the streaming observer do not.
func TestFailureCapOverride(t *testing.T) {
	var streamed int
	rep, err := RunWith(MATSPlus(), saf1Array(), RunOptions{
		CaptureAll: true,
		FailureCap: 10,
		OnFailure:  func(Failure) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 10 {
		t.Errorf("recorded %d failures, want the explicit cap 10", len(rep.Failures))
	}
	if streamed != rep.TotalMiscompares {
		t.Errorf("OnFailure saw %d of %d miscompares", streamed, rep.TotalMiscompares)
	}
	if rep.DroppedFailures != rep.TotalMiscompares-10 {
		t.Errorf("DroppedFailures = %d, want %d", rep.DroppedFailures, rep.TotalMiscompares-10)
	}
	// A cap above the limit is clamped, never unbounded.
	if got := (RunOptions{FailureCap: CaptureLimit * 4}).failureCap(); got != CaptureLimit {
		t.Errorf("failureCap(%d) = %d, want clamp to %d", CaptureLimit*4, got, CaptureLimit)
	}
}
