package march

import (
	"testing"
)

func TestParseRoundTripLibrary(t *testing.T) {
	// Every library algorithm must survive String -> ParseTest.
	for _, tst := range Library() {
		got, err := ParseTest(tst.Name, tst.String())
		if err != nil {
			t.Errorf("%s: %v", tst.Name, err)
			continue
		}
		if got.String() != tst.String() {
			t.Errorf("%s round trip:\n in  %s\n out %s", tst.Name, tst.String(), got.String())
		}
		p1, c1 := tst.Length()
		p2, c2 := got.Length()
		if p1 != p2 || c1 != c2 {
			t.Errorf("%s length changed: %dN+%d vs %dN+%d", tst.Name, p1, c1, p2, c2)
		}
	}
}

func TestParseASCIIAliases(t *testing.T) {
	got, err := ParseTest("custom", "m(w1); DSM; WUP; up(r1,w0,r0); DSM; WUP; u(r0)")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != MarchMLZ().String() {
		t.Errorf("ASCII parse:\n got  %s\n want %s", got.String(), MarchMLZ().String())
	}
	down, err := ParseTest("d", "ud(w0); dn(r0,w1); d(r1)")
	if err != nil {
		t.Fatal(err)
	}
	if down.Elems[1].Order != Down || down.Elems[2].Order != Down {
		t.Error("down aliases not honored")
	}
}

func TestParseBracesOptional(t *testing.T) {
	a, err := ParseTest("a", "{⇕(w0); ⇑(r0)}")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTest("b", "⇕(w0); ⇑(r0)")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("braces should not change the parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",             // empty
		"⇑(r0,w9)",     // unknown op
		"sideways(r0)", // unknown order
		"⇑()",          // empty ops
		"⇑ r0",         // missing parens
		"DSM; ⇑(r0)",   // ops while asleep (Validate)
		"⇑(r0); DSM",   // ends asleep (Validate)
	}
	for _, src := range bad {
		if _, err := ParseTest("bad", src); err == nil {
			t.Errorf("ParseTest(%q) should fail", src)
		}
	}
}

func TestParsedTestRuns(t *testing.T) {
	tst, err := ParseTest("mini", "⇕(w1); ⇑(r1,w0); ⇓(r0)")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(tst, newTestMemory())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Error("clean run flagged failures")
	}
	if p, _ := tst.Length(); p != 4 {
		t.Errorf("length %dN", p)
	}
}
