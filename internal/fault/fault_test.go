package fault

import (
	"strings"
	"testing"

	"sramtest/internal/sram"
)

func freshWithFaults(faults ...Fault) *sram.SRAM {
	s := sram.New()
	NewInjector(faults...).Attach(s)
	return s
}

func bitOf(t *testing.T, s *sram.SRAM, addr, bit int) bool {
	t.Helper()
	v, err := s.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	return v>>uint(bit)&1 == 1
}

func TestSAF0(t *testing.T) {
	s := freshWithFaults(Fault{Kind: SAF0, Victim: Cell{5, 3}})
	_ = s.Write(5, ^uint64(0))
	if bitOf(t, s, 5, 3) {
		t.Error("SAF0 cell read 1")
	}
	if !bitOf(t, s, 5, 4) {
		t.Error("neighbour bit corrupted")
	}
}

func TestSAF1(t *testing.T) {
	s := freshWithFaults(Fault{Kind: SAF1, Victim: Cell{5, 3}})
	_ = s.Write(5, 0)
	if !bitOf(t, s, 5, 3) {
		t.Error("SAF1 cell read 0")
	}
}

func TestSAF1VisibleWithoutWrite(t *testing.T) {
	// A stuck-at-1 cell reads 1 even if never written (read-path forcing).
	s := freshWithFaults(Fault{Kind: SAF1, Victim: Cell{5, 3}})
	if !bitOf(t, s, 5, 3) {
		t.Error("SAF1 invisible before first write")
	}
}

func TestTransitionFaults(t *testing.T) {
	s := freshWithFaults(Fault{Kind: TFUp, Victim: Cell{1, 0}})
	_ = s.Write(1, 1) // 0 -> 1 fails
	if bitOf(t, s, 1, 0) {
		t.Error("TFUp allowed the up transition")
	}
	s2 := freshWithFaults(Fault{Kind: TFDown, Victim: Cell{1, 0}})
	_ = s2.Write(1, 1) // up transition works
	if !bitOf(t, s2, 1, 0) {
		t.Fatal("TFDown blocked the up transition")
	}
	_ = s2.Write(1, 0) // 1 -> 0 fails: the cell must still hold 1
	if !bitOf(t, s2, 1, 0) {
		t.Error("TFDown allowed the down transition")
	}
}

func TestRDFFlipsAndReturnsFlipped(t *testing.T) {
	s := freshWithFaults(Fault{Kind: RDF, Victim: Cell{2, 7}})
	_ = s.Write(2, 1<<7)
	if bitOf(t, s, 2, 7) {
		t.Error("RDF read should return the flipped (0) value")
	}
	if s.RawBit(2, 7) {
		t.Error("RDF should leave the cell flipped")
	}
}

func TestIRFKeepsCellIntact(t *testing.T) {
	s := freshWithFaults(Fault{Kind: IRF, Victim: Cell{2, 7}})
	_ = s.Write(2, 1<<7)
	if bitOf(t, s, 2, 7) {
		t.Error("IRF read should return the complement")
	}
	if !s.RawBit(2, 7) {
		t.Error("IRF must not corrupt the stored value")
	}
}

func TestWDF(t *testing.T) {
	s := freshWithFaults(Fault{Kind: WDF, Victim: Cell{3, 1}})
	_ = s.Write(3, 1<<1) // transition write: fine
	if !s.RawBit(3, 1) {
		t.Fatal("transition write corrupted by WDF")
	}
	_ = s.Write(3, 1<<1) // non-transition write: disturbs
	if s.RawBit(3, 1) {
		t.Error("WDF should flip on a non-transition write")
	}
}

func TestCFin(t *testing.T) {
	agg, vic := Cell{10, 0}, Cell{20, 0}
	s := freshWithFaults(Fault{Kind: CFin, Aggressor: agg, Victim: vic, Val: true})
	_ = s.Write(20, 1) // victim holds 1
	_ = s.Write(10, 1) // aggressor 0->1: inverts victim
	if s.RawBit(20, 0) {
		t.Error("CFin up-transition should invert the victim")
	}
	_ = s.Write(10, 0) // down transition: no effect (Val=true means up)
	if s.RawBit(20, 0) {
		t.Error("down transition should not trigger an up-CFin")
	}
}

func TestCFid(t *testing.T) {
	agg, vic := Cell{10, 0}, Cell{20, 0}
	s := freshWithFaults(Fault{Kind: CFid, Aggressor: agg, Victim: vic, Val: false})
	_ = s.Write(20, 1)
	_ = s.Write(10, 1) // up transition forces victim to 0
	if s.RawBit(20, 0) {
		t.Error("CFid should force the victim to 0")
	}
}

func TestCFst(t *testing.T) {
	agg, vic := Cell{10, 0}, Cell{20, 0}
	s := freshWithFaults(Fault{Kind: CFst, Aggressor: agg, Victim: vic, AggVal: true, Val: false})
	_ = s.Write(10, 1) // aggressor now holds the activating state
	_ = s.Write(20, 1)
	// Reading the victim while the aggressor holds '1' forces 0.
	if bitOf(t, s, 20, 0) {
		t.Error("CFst should force the victim while the aggressor holds 1")
	}
}

func TestPGFTriggersOnSleepEntries(t *testing.T) {
	s := freshWithFaults(Fault{Kind: PGF, Victim: Cell{30, 8}, Val: false})
	_ = s.Write(30, 1<<8)
	_ = s.EnterLS(1e-6)
	_ = s.WakeUp()
	if bitOf(t, s, 30, 8) {
		t.Error("PGF should corrupt on LS entry")
	}
	_ = s.Write(30, 1<<8)
	_ = s.EnterDS(1e-6)
	_ = s.WakeUp()
	if bitOf(t, s, 30, 8) {
		t.Error("PGF should corrupt on DS entry")
	}
}

func TestMultipleFaultsCompose(t *testing.T) {
	s := freshWithFaults(
		Fault{Kind: SAF0, Victim: Cell{1, 0}},
		Fault{Kind: SAF1, Victim: Cell{1, 1}},
	)
	_ = s.Write(1, 0b01)
	v, _ := s.Read(1)
	if v&0b11 != 0b10 {
		t.Errorf("composed faults give %b, want 10", v&0b11)
	}
}

func TestInjectorAddAndFaults(t *testing.T) {
	in := NewInjector()
	in.Add(Fault{Kind: SAF0, Victim: Cell{0, 0}})
	if len(in.Faults()) != 1 {
		t.Error("Add did not register")
	}
}

func TestStrings(t *testing.T) {
	if SAF0.String() != "SAF0" || PGF.String() != "PGF" {
		t.Error("kind strings wrong")
	}
	f := Fault{Kind: CFin, Aggressor: Cell{1, 2}, Victim: Cell{3, 4}}
	if !strings.Contains(f.String(), "a=(1,2)") {
		t.Errorf("fault string %q", f)
	}
	g := Fault{Kind: SAF0, Victim: Cell{3, 4}}
	if !strings.Contains(g.String(), "(3,4)") {
		t.Errorf("fault string %q", g)
	}
}
