package fault

import (
	"fmt"

	"sramtest/internal/sram"
)

// DecoderFaultKind enumerates van de Goor's four address-decoder fault
// classes (the fault family MATS+ is designed to detect).
type DecoderFaultKind int

// Address-decoder fault classes.
const (
	// AFNoAccess: address A selects no cell (reads float high, writes
	// are lost).
	AFNoAccess DecoderFaultKind = iota
	// AFWrongAccess: address A selects cell B instead of A.
	AFWrongAccess
	// AFMultiAccess: address A selects both A and B.
	AFMultiAccess
	// AFShared: addresses A and B both select cell A (B never reaches
	// its own cell) — the dual of AFWrongAccess.
	AFShared
)

// String implements fmt.Stringer.
func (k DecoderFaultKind) String() string {
	return [...]string{"AF-no-access", "AF-wrong-access", "AF-multi-access", "AF-shared"}[k]
}

// DecoderFault is one address-decoder fault instance between logical
// addresses A and B.
type DecoderFault struct {
	Kind DecoderFaultKind
	A, B int
}

// String describes the instance.
func (f DecoderFault) String() string {
	return fmt.Sprintf("%s A=%#x B=%#x", f.Kind, f.A, f.B)
}

// Mapper returns the MapAddress hook implementing the fault.
func (f DecoderFault) Mapper() func(addr int) []int {
	return func(addr int) []int {
		switch f.Kind {
		case AFNoAccess:
			if addr == f.A {
				return nil
			}
		case AFWrongAccess:
			if addr == f.A {
				return []int{f.B}
			}
		case AFMultiAccess:
			if addr == f.A {
				return []int{f.A, f.B}
			}
		case AFShared:
			if addr == f.B {
				return []int{f.A}
			}
		}
		return []int{addr}
	}
}

// AttachDecoderFault installs the decoder fault alongside any cell faults
// already managed by the injector (the injector owns the hooks; the
// decoder mapping composes with them).
func (in *Injector) AttachDecoderFault(s *sram.SRAM, f DecoderFault) {
	s.SetHooks(sram.Hooks{
		StoreBit:        in.storeBit,
		AfterWrite:      in.afterWrite,
		ReadBit:         in.readBit,
		PowerTransition: in.powerTransition,
		MapAddress:      f.Mapper(),
	})
}
