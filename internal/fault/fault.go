// Package fault implements the functional memory fault models used to
// evaluate March tests: the classic static/dynamic cell and coupling
// faults of the memory-test literature (stuck-at, transition, read
// disturb, incorrect read, write disturb, inversion/idempotent/state
// coupling), the peripheral power-gating fault targeted by March LZ, and
// the paper's deep-sleep data retention fault DRF_DS (which is injected
// through the SRAM's retention model rather than an operation hook).
package fault

import (
	"fmt"

	"sramtest/internal/sram"
)

// Kind enumerates the functional fault models.
type Kind int

// Fault model kinds.
const (
	// SAF0/SAF1: the cell is stuck at 0/1 (reads and writes cannot
	// change it).
	SAF0 Kind = iota
	SAF1
	// TFUp: the 0→1 transition write fails (cell stays 0).
	TFUp
	// TFDown: the 1→0 transition write fails.
	TFDown
	// RDF: read disturb — a read flips the cell and returns the flipped
	// value.
	RDF
	// IRF: incorrect read — the read returns the complement, the cell
	// keeps its value.
	IRF
	// WDF: write disturb — a non-transition write (writing the stored
	// value) flips the cell.
	WDF
	// CFin: inversion coupling — a transition write on the aggressor
	// (direction given by Val: true = 0→1) inverts the victim.
	CFin
	// CFid: idempotent coupling — an aggressor up-transition forces the
	// victim to Val.
	CFid
	// CFst: state coupling — while the aggressor stores AggVal, the
	// victim is forced to Val.
	CFst
	// PGF: peripheral power-gating fault (refs [12][13]) — entering a
	// gated mode (LS or DS) corrupts the victim to Val because a
	// mis-controlled power switch glitches its word line.
	PGF
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"SAF0", "SAF1", "TFUp", "TFDown", "RDF", "IRF", "WDF", "CFin", "CFid", "CFst", "PGF"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Cell addresses one bit of the memory.
type Cell struct {
	Addr, Bit int
}

// Fault is one injected fault instance.
type Fault struct {
	Kind      Kind
	Victim    Cell
	Aggressor Cell // coupling faults only
	Val       bool // forced value / direction parameter
	AggVal    bool // CFst: aggressor state that activates the coupling
}

// String describes the instance.
func (f Fault) String() string {
	switch f.Kind {
	case CFin, CFid, CFst:
		return fmt.Sprintf("%s a=(%d,%d) v=(%d,%d)", f.Kind, f.Aggressor.Addr, f.Aggressor.Bit, f.Victim.Addr, f.Victim.Bit)
	default:
		return fmt.Sprintf("%s (%d,%d)", f.Kind, f.Victim.Addr, f.Victim.Bit)
	}
}

// Injector composes any number of fault instances into sram.Hooks.
type Injector struct {
	faults []Fault
}

// NewInjector builds an injector over the given faults.
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: faults}
}

// Add appends another fault instance.
func (in *Injector) Add(f Fault) { in.faults = append(in.faults, f) }

// Faults returns the injected instances.
func (in *Injector) Faults() []Fault { return in.faults }

// Attach installs the combined hooks on the SRAM. It must be called after
// any other SetHooks call (it replaces the hook set).
func (in *Injector) Attach(s *sram.SRAM) {
	s.SetHooks(in.Hooks())
}

// Hooks returns the combined hook set without installing it, so callers
// composing additional behavior (internal/faultmap's retention-decay
// layer) can wrap individual hooks before SetHooks.
func (in *Injector) Hooks() sram.Hooks {
	return sram.Hooks{
		StoreBit:        in.storeBit,
		AfterWrite:      in.afterWrite,
		ReadBit:         in.readBit,
		PowerTransition: in.powerTransition,
	}
}

// storeBit applies victim-local write faults.
func (in *Injector) storeBit(_ *sram.SRAM, addr, bit int, old, new bool) bool {
	v := new
	here := Cell{addr, bit}
	for _, f := range in.faults {
		if f.Victim != here {
			continue
		}
		switch f.Kind {
		case SAF0:
			v = false
		case SAF1:
			v = true
		case TFUp:
			if !old && v {
				v = old
			}
		case TFDown:
			if old && !v {
				v = old
			}
		case WDF:
			if old == v {
				v = !old
			}
		}
	}
	return v
}

// afterWrite applies aggressor-driven coupling effects once the word has
// settled, so same-word victims are affected too (the aggressor's
// transition glitch flips the victim after the write completes).
func (in *Injector) afterWrite(s *sram.SRAM, addr int, old, stored uint64) {
	for _, f := range in.faults {
		if f.Aggressor.Addr != addr {
			continue
		}
		ob := old>>uint(f.Aggressor.Bit)&1 == 1
		nb := stored>>uint(f.Aggressor.Bit)&1 == 1
		switch f.Kind {
		case CFin:
			// Transition in the configured direction inverts the victim.
			if ob != nb && nb == f.Val {
				s.RawSetBit(f.Victim.Addr, f.Victim.Bit, !s.RawBit(f.Victim.Addr, f.Victim.Bit))
			}
		case CFid:
			if !ob && nb { // up transition
				s.RawSetBit(f.Victim.Addr, f.Victim.Bit, f.Val)
			}
		case CFst:
			if nb == f.AggVal {
				s.RawSetBit(f.Victim.Addr, f.Victim.Bit, f.Val)
			}
		}
	}
}

func (in *Injector) readBit(s *sram.SRAM, addr, bit int, stored bool) bool {
	v := stored
	here := Cell{addr, bit}
	for _, f := range in.faults {
		if f.Victim != here {
			continue
		}
		switch f.Kind {
		case SAF0:
			v = false
		case SAF1:
			v = true
		case IRF:
			v = !stored
		case RDF:
			s.RawSetBit(addr, bit, !stored)
			v = !stored
		case CFst:
			if s.RawBit(f.Aggressor.Addr, f.Aggressor.Bit) == f.AggVal {
				s.RawSetBit(addr, bit, f.Val)
				v = f.Val
			}
		}
	}
	return v
}

func (in *Injector) powerTransition(s *sram.SRAM, ev sram.PowerEvent) {
	if ev != sram.EnterLS && ev != sram.EnterDS {
		return
	}
	for _, f := range in.faults {
		if f.Kind == PGF {
			s.RawSetBit(f.Victim.Addr, f.Victim.Bit, f.Val)
		}
	}
}
