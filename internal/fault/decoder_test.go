package fault

import (
	"strings"
	"testing"

	"sramtest/internal/sram"
)

func withDecoderFault(f DecoderFault) *sram.SRAM {
	s := sram.New()
	NewInjector().AttachDecoderFault(s, f)
	return s
}

func TestAFNoAccess(t *testing.T) {
	s := withDecoderFault(DecoderFault{Kind: AFNoAccess, A: 100})
	_ = s.Write(100, 0x55) // lost
	if s.RawWord(100) != 0 {
		t.Error("no-access write should be lost")
	}
	v, _ := s.Read(100)
	if v != ^uint64(0) {
		t.Errorf("no-access read should float to ones, got %x", v)
	}
	// Other addresses unaffected.
	_ = s.Write(101, 0x55)
	if v, _ := s.Read(101); v != 0x55 {
		t.Errorf("neighbour corrupted: %x", v)
	}
}

func TestAFWrongAccess(t *testing.T) {
	s := withDecoderFault(DecoderFault{Kind: AFWrongAccess, A: 100, B: 200})
	_ = s.Write(100, 0xAB)
	if s.RawWord(100) != 0 || s.RawWord(200) != 0xAB {
		t.Error("wrong-access write should land at B")
	}
	s.RawSetBit(200, 0, true)
	v, _ := s.Read(100)
	if v != s.RawWord(200) {
		t.Errorf("wrong-access read should come from B: %x", v)
	}
}

func TestAFMultiAccess(t *testing.T) {
	s := withDecoderFault(DecoderFault{Kind: AFMultiAccess, A: 100, B: 200})
	_ = s.Write(100, 0xF0)
	if s.RawWord(100) != 0xF0 || s.RawWord(200) != 0xF0 {
		t.Error("multi-access write should hit both words")
	}
	// Reads wire-AND the two cells.
	_ = s.Write(200, 0x30) // writes via identity (200 is not faulted)... B maps fine
	s.RawSetBit(100, 7, true)
	v, _ := s.Read(100)
	want := s.RawWord(100) & s.RawWord(200)
	if v != want {
		t.Errorf("multi-access read %x, want AND %x", v, want)
	}
}

func TestAFShared(t *testing.T) {
	s := withDecoderFault(DecoderFault{Kind: AFShared, A: 100, B: 200})
	_ = s.Write(200, 0x77) // lands at A instead
	if s.RawWord(100) != 0x77 || s.RawWord(200) != 0 {
		t.Error("shared write should land at A")
	}
	v, _ := s.Read(200)
	if v != 0x77 {
		t.Errorf("shared read should come from A: %x", v)
	}
}

func TestDecoderFaultString(t *testing.T) {
	f := DecoderFault{Kind: AFWrongAccess, A: 1, B: 2}
	if !strings.Contains(f.String(), "wrong-access") {
		t.Errorf("String = %q", f.String())
	}
}
