package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"sramtest/internal/cluster"
	"sramtest/internal/jobs"
)

// defaultBatchInflight bounds a batch's concurrent jobs when the server
// wasn't configured otherwise.
const defaultBatchInflight = 16

// handleBatch is the node-local half of the cluster batch protocol
// (internal/cluster): NDJSON specs in, streamed results out as jobs
// complete, through the same manager — and therefore the same queue
// bound, cache, and runners — as single-job submissions. A full queue
// parks the submitting worker instead of failing the line, so the
// bounded in-flight window is the batch's backpressure.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	lines, err := cluster.ReadBatchLines(http.MaxBytesReader(w, r.Body, cluster.MaxBatchBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(lines) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	bw := cluster.NewBatchWriter(w)

	inflight := s.BatchInflight
	if inflight <= 0 {
		inflight = defaultBatchInflight
	}
	if inflight > len(lines) {
		inflight = len(lines)
	}
	out := make(chan cluster.BatchResult, inflight)
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for br := range out {
			_ = bw.Write(br)
		}
	}()
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out <- s.runBatchLine(r.Context(), i, lines[i])
			}
		}()
	}
	for i := range lines {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(out)
	writerWg.Wait()
}

// runBatchLine drives one spec through the manager: submit (waiting out
// a full queue), wait for the terminal state, fetch the bytes. Every
// failure mode becomes a failed result line; the stream always emits
// exactly one line per input line.
func (s *Server) runBatchLine(ctx context.Context, i int, line []byte) cluster.BatchResult {
	spec, err := cluster.DecodeSpec(line)
	if err != nil {
		return cluster.BatchResult{Index: i, State: cluster.BatchStateFailed, Error: "malformed spec: " + err.Error()}
	}
	st, err := s.submitWait(ctx, spec)
	if err != nil {
		return cluster.BatchResult{Index: i, State: cluster.BatchStateFailed, Error: err.Error()}
	}
	if !st.Cached {
		if st, err = s.mgr.Wait(ctx, st.ID); err != nil {
			return cluster.BatchResult{Index: i, Key: st.Key, State: cluster.BatchStateFailed, Error: err.Error()}
		}
	}
	switch st.State {
	case jobs.StateDone:
		res, _, err := s.mgr.Result(st.ID)
		if err != nil {
			return cluster.BatchResult{Index: i, Key: st.Key, State: cluster.BatchStateFailed, Error: err.Error()}
		}
		return cluster.BatchResult{Index: i, Key: st.Key, State: cluster.BatchStateDone, Cached: st.Cached, Result: res}
	case jobs.StateCanceled:
		return cluster.BatchResult{Index: i, Key: st.Key, State: cluster.BatchStateFailed, Error: "job canceled"}
	default:
		return cluster.BatchResult{Index: i, Key: st.Key, State: cluster.BatchStateFailed, Error: st.Error}
	}
}

// submitWait submits spec, waiting for queue capacity instead of
// surfacing ErrQueueFull — the batch's backpressure toward its bounded
// in-flight window.
func (s *Server) submitWait(ctx context.Context, spec jobs.Spec) (jobs.Status, error) {
	for {
		st, err := s.mgr.Submit(spec)
		if !errors.Is(err, jobs.ErrQueueFull) {
			return st, err
		}
		select {
		case <-ctx.Done():
			return jobs.Status{}, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// handleLoad reports queue pressure; cluster coordinators and external
// monitors read it.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	queued, running := s.mgr.Load()
	writeJSON(w, http.StatusOK, map[string]int64{
		"queued":  queued,
		"running": running,
		"depth":   queued + running,
	})
}

// handleResultByKey serves a stored result directly by content address.
// Keys are SHA-256 of the canonical spec, so any node holding the entry
// is as authoritative as the one that computed it — this is the
// replication-read path cluster coordinators use after a node failure.
func (s *Server) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no result store")
		return
	}
	res, ok := s.st.Probe(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, "no result for key")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(res)
}
