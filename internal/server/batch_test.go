package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sramtest/internal/cluster"
	"sramtest/internal/jobs"
	"sramtest/internal/noisescan"
	"sramtest/internal/yield"
)

// decodeBatch reads an NDJSON batch response into index-keyed results,
// enforcing the exactly-one-line-per-input contract.
func decodeBatch(t *testing.T, w *httptest.ResponseRecorder, want int) map[int]cluster.BatchResult {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("batch: Content-Type %q, want NDJSON", ct)
	}
	out := map[int]cluster.BatchResult{}
	dec := json.NewDecoder(w.Body)
	for dec.More() {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			t.Fatal(err)
		}
		if _, dup := out[br.Index]; dup {
			t.Fatalf("duplicate result for index %d", br.Index)
		}
		out[br.Index] = br
	}
	if len(out) != want {
		t.Fatalf("got %d results, want %d", len(out), want)
	}
	return out
}

func postBatch(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestBatchStreamsOneResultPerLine(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	body := `{"kind":"exp","exp":{"samples":4,"seed":1}}
{"kind":"exp","exp":{"samples":4,"seed":2}}
not json at all
{"kind":"bogus"}
{"kind":"exp","exp":{"samples":4,"seed":3}}`

	got := decodeBatch(t, postBatch(t, srv, body), 5)
	for _, i := range []int{0, 1, 4} {
		br := got[i]
		if br.State != cluster.BatchStateDone {
			t.Fatalf("index %d: state %s (%s)", i, br.State, br.Error)
		}
		seed := map[int]int64{0: 1, 1: 2, 4: 3}[i]
		spec := jobs.Spec{Kind: jobs.KindExp, Exp: &jobs.ExpSpec{Samples: 4, Seed: seed}}
		want, err := jobs.FixtureRunner(0)(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(br.Result, want) {
			t.Fatalf("index %d: result bytes diverge from the fixture", i)
		}
		key, _ := spec.Key()
		if br.Key != key {
			t.Fatalf("index %d: key %q, want %q", i, br.Key, key)
		}
	}
	for _, i := range []int{2, 3} {
		if br := got[i]; br.State != cluster.BatchStateFailed || br.Error == "" {
			t.Fatalf("index %d: state %s, want a failed line with an error", i, br.State)
		}
	}
}

func TestBatchServesCacheOnResubmit(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	body := `{"kind":"exp","exp":{"samples":8,"seed":5}}`
	first := decodeBatch(t, postBatch(t, srv, body), 1)[0]
	second := decodeBatch(t, postBatch(t, srv, body), 1)[0]
	if first.State != cluster.BatchStateDone || second.State != cluster.BatchStateDone {
		t.Fatalf("states %s / %s", first.State, second.State)
	}
	if !second.Cached {
		t.Fatal("resubmitted line not served from the store")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached bytes differ from the computed ones")
	}
}

// TestBatchYieldShardsMerge is the cluster yield fan-out end to end
// through the real runner: two shard specs stream back Partial JSON,
// and the merged result renders byte-identically to the whole-estimate
// job — what cmd/yield -cluster does against a live daemon.
func TestBatchYieldShardsMerge(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	body := `{"kind":"yield","yield":{"samples":64,"vref":0.34,"shards":2,"shard":0}}
{"kind":"yield","yield":{"samples":64,"vref":0.34,"shards":2,"shard":1}}`
	got := decodeBatch(t, postBatch(t, srv, body), 2)
	parts := make([]yield.Partial, 2)
	for i := 0; i < 2; i++ {
		br := got[i]
		if br.State != cluster.BatchStateDone {
			t.Fatalf("shard %d: state %s (%s)", i, br.State, br.Error)
		}
		if err := json.Unmarshal(br.Result, &parts[i]); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := yield.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := jobs.Run(context.Background(), jobs.Spec{
		Kind: jobs.KindYield, Yield: &jobs.YieldSpec{Samples: 64, Vref: 0.34},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := yield.Report(merged).Write(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&buf)
	if !bytes.Equal(whole, buf.Bytes()) {
		t.Errorf("merged cluster report differs from the whole job:\n--- whole ---\n%s\n--- merged ---\n%s", whole, buf.Bytes())
	}
}

// TestBatchNoiseScanShardsMerge is the cluster noisescan fan-out end to
// end through the real runner: two shard specs stream back Partial
// JSON, and the merged result renders byte-identically to the
// whole-scan job — what cmd/noisescan -cluster does against a live
// daemon. With TestNoiseScanJobMatchesCLIBytes this closes the CLI ≡
// daemon ≡ cluster determinism triangle for the noise criterion.
func TestBatchNoiseScanShardsMerge(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	body := `{"kind":"noisescan","noisescan":{"caseStudy":5,"points":5,"shards":2,"shard":0}}
{"kind":"noisescan","noisescan":{"caseStudy":5,"points":5,"shards":2,"shard":1}}`
	got := decodeBatch(t, postBatch(t, srv, body), 2)
	parts := make([]noisescan.Partial, 2)
	for i := 0; i < 2; i++ {
		br := got[i]
		if br.State != cluster.BatchStateDone {
			t.Fatalf("shard %d: state %s (%s)", i, br.State, br.Error)
		}
		if err := json.Unmarshal(br.Result, &parts[i]); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := noisescan.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := jobs.Run(context.Background(), jobs.Spec{
		Kind: jobs.KindNoiseScan, NoiseScan: &jobs.NoiseScanSpec{CaseStudy: 5, Points: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := noisescan.Summary(merged).Write(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&buf)
	if err := noisescan.Curve(merged).Write(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&buf)
	if !bytes.Equal(whole, buf.Bytes()) {
		t.Errorf("merged cluster report differs from the whole job:\n--- whole ---\n%s\n--- merged ---\n%s", whole, buf.Bytes())
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	if w := postBatch(t, srv, ""); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", w.Code)
	}
	long := strings.Repeat("x", cluster.MaxBatchLine+1)
	if w := postBatch(t, srv, long); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized line: HTTP %d, want 400", w.Code)
	}
}

func TestLoadReportsQueuePressure(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	r := httptest.NewRequest("GET", "/v1/load", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("load: HTTP %d", w.Code)
	}
	var load map[string]int64
	if err := json.Unmarshal(w.Body.Bytes(), &load); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"queued", "running", "depth"} {
		if _, ok := load[k]; !ok {
			t.Fatalf("load body missing %q: %s", k, w.Body)
		}
	}
}

func TestResultByKeyServesReplicaReads(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	got := decodeBatch(t, postBatch(t, srv, `{"kind":"exp","exp":{"samples":4,"seed":9}}`), 1)[0]
	if got.State != cluster.BatchStateDone {
		t.Fatalf("state %s (%s)", got.State, got.Error)
	}

	r := httptest.NewRequest("GET", "/v1/results/"+got.Key, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("result by key: HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), got.Result) {
		t.Fatal("replica read bytes differ from the batch result")
	}

	r = httptest.NewRequest("GET", "/v1/results/"+strings.Repeat("0", 64), nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown key: HTTP %d, want 404", w.Code)
	}
}
