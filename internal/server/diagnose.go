package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"sramtest/internal/cluster"
	"sramtest/internal/diag"
)

// Diagnoser answers dictionary-matching queries. Both the linear
// *diag.Dictionary and the inverted *index.Index satisfy it; the two
// return byte-identical diagnoses, so which one serves is purely an
// operational choice (sramd always indexes).
type Diagnoser interface {
	Match(sig diag.Signature) diag.Diagnosis
}

// DiagInfo describes the loaded dictionary on GET /v1/diagnose, so
// clients and smoke tests can see what a node is serving.
type DiagInfo struct {
	// Entries is the dictionary size; Flow its condition count.
	Entries int `json:"entries"`
	Flow    int `json:"flowConds"`
	// Indexed reports the inverted index is in front of the scan, with
	// its shape (distinct signatures / discrete key buckets).
	Indexed bool `json:"indexed"`
	Groups  int  `json:"groups,omitempty"`
	Buckets int  `json:"buckets,omitempty"`
}

// diagRequest is one NDJSON line of POST /v1/diagnose: a JSON signature
// or the binary codec's bytes (base64 in JSON), exactly one of the two.
type diagRequest struct {
	Sig *diag.Signature `json:"sig,omitempty"`
	Bin []byte          `json:"bin,omitempty"`
}

// DiagResult is one streamed NDJSON response line of POST /v1/diagnose.
// Lines arrive in completion order; Index ties them to request lines.
type DiagResult struct {
	Index     int             `json:"index"`
	Diagnosis *diag.Diagnosis `json:"diagnosis,omitempty"`
	// Node is filled by the cluster coordinator when fanning out.
	Node  string `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleDiagnoseInfo reports the loaded dictionary (503 when none).
func (s *Server) handleDiagnoseInfo(w http.ResponseWriter, r *http.Request) {
	if s.Diag == nil {
		writeError(w, http.StatusServiceUnavailable, "no diagnosis dictionary loaded")
		return
	}
	writeJSON(w, http.StatusOK, s.DiagInfo)
}

// handleDiagnose is the streaming diagnosis endpoint: NDJSON signature
// lines in, one DiagResult line out per input line as matches complete,
// through a bounded in-flight worker window (the same backpressure
// shape as /v1/batch). Malformed lines fail individually; the stream
// always emits exactly one line per input line.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if s.Diag == nil {
		writeError(w, http.StatusServiceUnavailable, "no diagnosis dictionary loaded")
		return
	}
	lines, err := cluster.ReadBatchLines(http.MaxBytesReader(w, r.Body, cluster.MaxBatchBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(lines) == 0 {
		writeError(w, http.StatusBadRequest, "empty diagnosis batch")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := newNDJSONWriter(w)

	inflight := s.BatchInflight
	if inflight <= 0 {
		inflight = defaultBatchInflight
	}
	if inflight > len(lines) {
		inflight = len(lines)
	}
	out := make(chan DiagResult, inflight)
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	var bytes, errs int64
	go func() {
		defer writerWg.Done()
		for dr := range out {
			if dr.Error != "" {
				errs++
			}
			_ = enc.write(dr)
		}
	}()
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out <- s.diagnoseLine(i, lines[i])
			}
		}()
	}
	for i := range lines {
		bytes += int64(len(lines[i]))
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(out)
	writerWg.Wait()
	diag.CountStream(int64(len(lines))-errs, errs, bytes)
}

// diagnoseLine decodes and matches one request line.
func (s *Server) diagnoseLine(i int, line []byte) DiagResult {
	sig, err := DecodeDiagLine(line)
	if err != nil {
		return DiagResult{Index: i, Error: err.Error()}
	}
	dg := s.Diag.Match(sig)
	return DiagResult{Index: i, Diagnosis: &dg}
}

// errSigOrBin rejects lines carrying neither or both payload forms.
var errSigOrBin = errors.New(`exactly one of "sig" or "bin" is required`)

// DecodeDiagLine parses one diagnosis request line into the signature
// it carries (JSON form or binary codec bytes).
func DecodeDiagLine(line []byte) (diag.Signature, error) {
	var req diagRequest
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return diag.Signature{}, errors.New("malformed line: " + err.Error())
	}
	switch {
	case req.Sig != nil && req.Bin == nil:
		return *req.Sig, nil
	case req.Bin != nil && req.Sig == nil:
		var sig diag.Signature
		if err := sig.UnmarshalBinary(req.Bin); err != nil {
			return diag.Signature{}, errors.New("malformed binary signature: " + err.Error())
		}
		return sig, nil
	}
	return diag.Signature{}, errSigOrBin
}

// ndjsonWriter streams JSON lines, flushing each through to the client.
type ndjsonWriter struct {
	enc *json.Encoder
	f   http.Flusher
}

func newNDJSONWriter(w io.Writer) *ndjsonWriter {
	e := &ndjsonWriter{enc: json.NewEncoder(w)}
	e.enc.SetEscapeHTML(false)
	if f, ok := w.(http.Flusher); ok {
		e.f = f
	}
	return e
}

func (e *ndjsonWriter) write(v any) error {
	if err := e.enc.Encode(v); err != nil {
		return err
	}
	if e.f != nil {
		e.f.Flush()
	}
	return nil
}
