package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sramtest/internal/diag"
	"sramtest/internal/diag/diagtest"
	"sramtest/internal/diag/index"
	"sramtest/internal/jobs"
)

// diagServer is a node server with a synthetic dictionary loaded, the
// way sramd -diag-dict wires one.
func diagServer(t *testing.T, entries int) (*Server, *diag.Dictionary) {
	t.Helper()
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	rng := rand.New(rand.NewSource(77))
	d, err := diagtest.RandomDictionary(rng, entries, 1+entries/10, diag.DefaultFlowConditions())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.New(d)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	srv.Diag = ix
	srv.DiagInfo = DiagInfo{Entries: st.Entries, Flow: len(d.Flow), Indexed: true,
		Groups: st.Groups, Buckets: st.Buckets}
	return srv, d
}

func postDiagnose(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest("POST", "/v1/diagnose", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// decodeDiagnose reads the NDJSON response into index-keyed results,
// enforcing the exactly-one-line-per-input contract.
func decodeDiagnose(t *testing.T, w *httptest.ResponseRecorder, want int) map[int]DiagResult {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("diagnose: HTTP %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("diagnose: Content-Type %q, want NDJSON", ct)
	}
	out := map[int]DiagResult{}
	dec := json.NewDecoder(w.Body)
	for dec.More() {
		var dr DiagResult
		if err := dec.Decode(&dr); err != nil {
			t.Fatal(err)
		}
		if _, dup := out[dr.Index]; dup {
			t.Fatalf("duplicate result for index %d", dr.Index)
		}
		out[dr.Index] = dr
	}
	if len(out) != want {
		t.Fatalf("got %d results, want %d", len(out), want)
	}
	return out
}

func TestDiagnoseWithoutDictionary(t *testing.T) {
	srv, _, _ := newTestServer(t, jobs.FixtureRunner(0))
	if w := postDiagnose(t, srv, `{"sig":{}}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST without dictionary: HTTP %d, want 503", w.Code)
	}
	r := httptest.NewRequest("GET", "/v1/diagnose", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET without dictionary: HTTP %d, want 503", w.Code)
	}
}

// TestDiagnoseStream drives the full line protocol: JSON signatures,
// binary-codec signatures, malformed lines, and the one-line-per-input
// contract, with results byte-identical to calling Match directly.
func TestDiagnoseStream(t *testing.T) {
	srv, d := diagServer(t, 60)
	diag.ResetStats()

	sig0, _ := json.Marshal(d.Entries[0].Sig)
	bin1, err := d.Entries[1].Sig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		fmt.Sprintf(`{"sig":%s}`, sig0),
		fmt.Sprintf(`{"bin":%q}`, base64.StdEncoding.EncodeToString(bin1)),
		`this is not json`,
		`{"sig":{},"bin":"AA=="}`,
		`{}`,
	}
	res := decodeDiagnose(t, postDiagnose(t, srv, strings.Join(lines, "\n")), len(lines))

	for i, wantSig := range map[int]diag.Signature{0: d.Entries[0].Sig, 1: d.Entries[1].Sig} {
		dr := res[i]
		if dr.Error != "" || dr.Diagnosis == nil {
			t.Fatalf("line %d: %+v", i, dr)
		}
		want, _ := json.Marshal(d.Match(wantSig))
		got, _ := json.Marshal(dr.Diagnosis)
		if !bytes.Equal(want, got) {
			t.Fatalf("line %d: streamed diagnosis differs from direct Match\nwant %s\ngot  %s", i, want, got)
		}
		if !dr.Diagnosis.Exact {
			t.Fatalf("line %d: verbatim entry signature not exact", i)
		}
	}
	for _, i := range []int{2, 3, 4} {
		if res[i].Error == "" || res[i].Diagnosis != nil {
			t.Fatalf("bad line %d should fail individually: %+v", i, res[i])
		}
	}

	st := diag.Stats()
	if st.StreamRequests != 1 || st.StreamSignatures != 2 || st.StreamErrors != 3 {
		t.Fatalf("stream counters %+v, want 1 request / 2 signatures / 3 errors", st)
	}
	if st.StreamBytes == 0 {
		t.Fatal("stream bytes not counted")
	}

	// The info endpoint reports the loaded dictionary.
	r := httptest.NewRequest("GET", "/v1/diagnose", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	var info DiagInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Entries != len(d.Entries) || !info.Indexed || info.Groups == 0 {
		t.Fatalf("diagnose info %+v", info)
	}

	// And the metrics endpoint exposes the sramd_diag_* family.
	r = httptest.NewRequest("GET", "/metrics", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	// 2 streamed matches + the 2 direct d.Match comparison calls above.
	for _, metric := range []string{
		"sramd_diag_matches_total 4",
		"sramd_diag_stream_signatures_total 2",
		"sramd_diag_stream_errors_total 3",
	} {
		if !strings.Contains(w.Body.String(), metric) {
			t.Fatalf("metrics missing %q", metric)
		}
	}
}

func TestDiagnoseEmptyBatch(t *testing.T) {
	srv, _ := diagServer(t, 10)
	if w := postDiagnose(t, srv, "\n\n"); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", w.Code)
	}
}
