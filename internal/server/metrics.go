package server

import (
	"fmt"
	"io"

	"sramtest/internal/diag"
	"sramtest/internal/engine"
	"sramtest/internal/faultmap"
	"sramtest/internal/jobs"
	"sramtest/internal/noisescan"
	"sramtest/internal/spice"
	"sramtest/internal/store"
	"sramtest/internal/yield"
)

// writeMetrics renders the Prometheus text exposition of the daemon:
// job-state counters, cache hit ratio, sweep task throughput, and the
// job-latency histogram.
func writeMetrics(w io.Writer, mgr *jobs.Manager, st *store.Store) {
	s := mgr.Stats()

	fmt.Fprintln(w, "# HELP sramd_jobs Current job records by state.")
	fmt.Fprintln(w, "# TYPE sramd_jobs gauge")
	fmt.Fprintf(w, "sramd_jobs{state=\"queued\"} %d\n", s.Queued)
	fmt.Fprintf(w, "sramd_jobs{state=\"running\"} %d\n", s.Running)
	fmt.Fprintf(w, "sramd_jobs{state=\"done\"} %d\n", s.Done)
	fmt.Fprintf(w, "sramd_jobs{state=\"failed\"} %d\n", s.Failed)
	fmt.Fprintf(w, "sramd_jobs{state=\"canceled\"} %d\n", s.Canceled)

	fmt.Fprintln(w, "# HELP sramd_cache_hits_total Submissions answered from the result store.")
	fmt.Fprintln(w, "# TYPE sramd_cache_hits_total counter")
	fmt.Fprintf(w, "sramd_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintln(w, "# HELP sramd_cache_misses_total Submissions that had to compute.")
	fmt.Fprintln(w, "# TYPE sramd_cache_misses_total counter")
	fmt.Fprintf(w, "sramd_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintln(w, "# HELP sramd_cache_hit_ratio Hits over lookups since start.")
	fmt.Fprintln(w, "# TYPE sramd_cache_hit_ratio gauge")
	ratio := 0.0
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		ratio = float64(s.CacheHits) / float64(lookups)
	}
	fmt.Fprintf(w, "sramd_cache_hit_ratio %g\n", ratio)

	if st != nil {
		_, _, evictions := st.Stats()
		fmt.Fprintln(w, "# HELP sramd_store_entries Entries currently stored.")
		fmt.Fprintln(w, "# TYPE sramd_store_entries gauge")
		fmt.Fprintf(w, "sramd_store_entries %d\n", st.Len())
		fmt.Fprintln(w, "# HELP sramd_store_evictions_total LRU evictions since start.")
		fmt.Fprintln(w, "# TYPE sramd_store_evictions_total counter")
		fmt.Fprintf(w, "sramd_store_evictions_total %d\n", evictions)
	}

	fmt.Fprintln(w, "# HELP sramd_sweep_tasks_done_total Sweep-engine tasks completed across all jobs.")
	fmt.Fprintln(w, "# TYPE sramd_sweep_tasks_done_total counter")
	fmt.Fprintf(w, "sramd_sweep_tasks_done_total %d\n", s.TasksDone)
	fmt.Fprintln(w, "# HELP sramd_sweep_tasks_total Sweep-engine tasks scheduled across all jobs.")
	fmt.Fprintln(w, "# TYPE sramd_sweep_tasks_total counter")
	fmt.Fprintf(w, "sramd_sweep_tasks_total %d\n", s.TasksTotal)

	sp := spice.Stats()
	fmt.Fprintln(w, "# HELP sramd_spice_solves_total Top-level operating-point/transient solves.")
	fmt.Fprintln(w, "# TYPE sramd_spice_solves_total counter")
	fmt.Fprintf(w, "sramd_spice_solves_total %d\n", sp.Solves)
	fmt.Fprintln(w, "# HELP sramd_spice_newton_iters_total Newton iterations across all solves.")
	fmt.Fprintln(w, "# TYPE sramd_spice_newton_iters_total counter")
	fmt.Fprintf(w, "sramd_spice_newton_iters_total %d\n", sp.NewtonIters)
	fmt.Fprintln(w, "# HELP sramd_spice_warm_starts_total Solves seeded from a previous solution.")
	fmt.Fprintln(w, "# TYPE sramd_spice_warm_starts_total counter")
	fmt.Fprintf(w, "sramd_spice_warm_starts_total %d\n", sp.WarmStarts)
	fmt.Fprintln(w, "# HELP sramd_spice_fallbacks_total Homotopy/cold-restart fallbacks by kind.")
	fmt.Fprintln(w, "# TYPE sramd_spice_fallbacks_total counter")
	fmt.Fprintf(w, "sramd_spice_fallbacks_total{kind=\"cold_restart\"} %d\n", sp.ColdRestarts)
	fmt.Fprintf(w, "sramd_spice_fallbacks_total{kind=\"gmin\"} %d\n", sp.GminFallbacks)
	fmt.Fprintf(w, "sramd_spice_fallbacks_total{kind=\"source\"} %d\n", sp.SourceFallbacks)
	fmt.Fprintln(w, "# HELP sramd_spice_newton_iters_per_solve Mean Newton iterations per solve since start.")
	fmt.Fprintln(w, "# TYPE sramd_spice_newton_iters_per_solve gauge")
	fmt.Fprintf(w, "sramd_spice_newton_iters_per_solve %g\n", sp.ItersPerSolve())
	fmt.Fprintln(w, "# HELP sramd_spice_noise_evals_total Noise-source current evaluations in stochastic transients.")
	fmt.Fprintln(w, "# TYPE sramd_spice_noise_evals_total counter")
	fmt.Fprintf(w, "sramd_spice_noise_evals_total %d\n", sp.NoiseEvals)
	fmt.Fprintln(w, "# HELP sramd_spice_ensemble_runs_total Stochastic-transient ensemble members completed.")
	fmt.Fprintln(w, "# TYPE sramd_spice_ensemble_runs_total counter")
	fmt.Fprintf(w, "sramd_spice_ensemble_runs_total %d\n", sp.EnsembleRuns)
	fmt.Fprintln(w, "# HELP sramd_spice_ensemble_steps_total Transient timesteps across all ensemble members.")
	fmt.Fprintln(w, "# TYPE sramd_spice_ensemble_steps_total counter")
	fmt.Fprintf(w, "sramd_spice_ensemble_steps_total %d\n", sp.EnsembleSteps)

	// Tiered-engine counters: all zero while every job runs the exact
	// backend; under -engine tiered the screened/escalated split is the
	// live measure of how much SPICE work the surrogate is absorbing.
	es := engine.Stats()
	fmt.Fprintln(w, "# HELP sramd_engine_decisions_total Band-screened decisions by outcome.")
	fmt.Fprintln(w, "# TYPE sramd_engine_decisions_total counter")
	fmt.Fprintf(w, "sramd_engine_decisions_total{outcome=\"screened\"} %d\n", es.Screened)
	fmt.Fprintf(w, "sramd_engine_decisions_total{outcome=\"escalated\"} %d\n", es.Escalations)
	fmt.Fprintf(w, "sramd_engine_decisions_total{outcome=\"transient_direct\"} %d\n", es.TransientDirect)
	fmt.Fprintln(w, "# HELP sramd_engine_screen_ratio Screened over screened+escalated since start.")
	fmt.Fprintln(w, "# TYPE sramd_engine_screen_ratio gauge")
	fmt.Fprintf(w, "sramd_engine_screen_ratio %g\n", es.ScreenRatio())
	fmt.Fprintln(w, "# HELP sramd_engine_cal_solves_total SPICE solves spent calibrating surrogate tables.")
	fmt.Fprintln(w, "# TYPE sramd_engine_cal_solves_total counter")
	fmt.Fprintf(w, "sramd_engine_cal_solves_total %d\n", es.CalSolves)
	fmt.Fprintln(w, "# HELP sramd_engine_tables_total Surrogate calibration tables built.")
	fmt.Fprintln(w, "# TYPE sramd_engine_tables_total counter")
	fmt.Fprintf(w, "sramd_engine_tables_total %d\n", es.Tables)
	fmt.Fprintln(w, "# HELP sramd_engine_exact_inserts_total Escalated exact samples folded back into tables.")
	fmt.Fprintln(w, "# TYPE sramd_engine_exact_inserts_total counter")
	fmt.Fprintf(w, "sramd_engine_exact_inserts_total %d\n", es.ExactInserts)

	// Yield-estimator counters: the screen economy of the rare-event
	// path plus last-estimate health gauges (ESS, shift, tail depth).
	ys := yield.Stats()
	fmt.Fprintln(w, "# HELP sramd_yield_runs_total Completed full yield estimates.")
	fmt.Fprintln(w, "# TYPE sramd_yield_runs_total counter")
	fmt.Fprintf(w, "sramd_yield_runs_total %d\n", ys.Runs)
	fmt.Fprintln(w, "# HELP sramd_yield_partials_total Completed shard partials.")
	fmt.Fprintln(w, "# TYPE sramd_yield_partials_total counter")
	fmt.Fprintf(w, "sramd_yield_partials_total %d\n", ys.Partials)
	fmt.Fprintln(w, "# HELP sramd_yield_decisions_total Yield samples by outcome.")
	fmt.Fprintln(w, "# TYPE sramd_yield_decisions_total counter")
	fmt.Fprintf(w, "sramd_yield_decisions_total{outcome=\"screened\"} %d\n", ys.Screens)
	fmt.Fprintf(w, "sramd_yield_decisions_total{outcome=\"escalated\"} %d\n", ys.Escalations)
	fmt.Fprintln(w, "# HELP sramd_yield_screen_ratio Screened over screened+escalated since start.")
	fmt.Fprintln(w, "# TYPE sramd_yield_screen_ratio gauge")
	fmt.Fprintf(w, "sramd_yield_screen_ratio %g\n", ys.ScreenRatio())
	fmt.Fprintln(w, "# HELP sramd_yield_exact_solves_total Full DRV bisections spent on yield estimation.")
	fmt.Fprintln(w, "# TYPE sramd_yield_exact_solves_total counter")
	fmt.Fprintf(w, "sramd_yield_exact_solves_total %d\n", ys.ExactSolves)
	fmt.Fprintln(w, "# HELP sramd_yield_failures_total Exact-confirmed failing samples.")
	fmt.Fprintln(w, "# TYPE sramd_yield_failures_total counter")
	fmt.Fprintf(w, "sramd_yield_failures_total %d\n", ys.Failures)
	fmt.Fprintln(w, "# HELP sramd_yield_last_ess Effective sample size of the latest full estimate.")
	fmt.Fprintln(w, "# TYPE sramd_yield_last_ess gauge")
	fmt.Fprintf(w, "sramd_yield_last_ess %g\n", ys.LastESS)
	fmt.Fprintln(w, "# HELP sramd_yield_last_shift_sigma Mean-shift norm of the latest full estimate.")
	fmt.Fprintln(w, "# TYPE sramd_yield_last_shift_sigma gauge")
	fmt.Fprintf(w, "sramd_yield_last_shift_sigma %g\n", ys.LastShiftNorm)
	fmt.Fprintln(w, "# HELP sramd_yield_last_tail_sigma Tail depth of the latest full estimate.")
	fmt.Fprintln(w, "# TYPE sramd_yield_last_tail_sigma gauge")
	fmt.Fprintf(w, "sramd_yield_last_tail_sigma %g\n", ys.LastSigma)

	// Fault-map corpus counters: generation/evaluation throughput plus
	// last-run health gauges (best coverage, fault density).
	fs := faultmap.Stats()
	fmt.Fprintln(w, "# HELP sramd_faultmap_runs_total Completed full fault-map corpus evaluations.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_runs_total counter")
	fmt.Fprintf(w, "sramd_faultmap_runs_total %d\n", fs.Runs)
	fmt.Fprintln(w, "# HELP sramd_faultmap_partials_total Completed fault-map shard partials.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_partials_total counter")
	fmt.Fprintf(w, "sramd_faultmap_partials_total %d\n", fs.Partials)
	fmt.Fprintln(w, "# HELP sramd_faultmap_maps_total Fault maps generated and evaluated.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_maps_total counter")
	fmt.Fprintf(w, "sramd_faultmap_maps_total %d\n", fs.Maps)
	fmt.Fprintln(w, "# HELP sramd_faultmap_fault_bits_total Fault bits across all generated maps.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_fault_bits_total counter")
	fmt.Fprintf(w, "sramd_faultmap_fault_bits_total %d\n", fs.FaultBits)
	fmt.Fprintln(w, "# HELP sramd_faultmap_detected_total Detected fault bits, summed over tests.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_detected_total counter")
	fmt.Fprintf(w, "sramd_faultmap_detected_total %d\n", fs.Detected)
	fmt.Fprintln(w, "# HELP sramd_faultmap_dropped_failures_total Miscompares beyond the bounded capture.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_dropped_failures_total counter")
	fmt.Fprintf(w, "sramd_faultmap_dropped_failures_total %d\n", fs.Dropped)
	fmt.Fprintln(w, "# HELP sramd_faultmap_last_best_coverage Best per-test coverage of the latest full run.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_last_best_coverage gauge")
	fmt.Fprintf(w, "sramd_faultmap_last_best_coverage %g\n", fs.LastBestCoverage)
	fmt.Fprintln(w, "# HELP sramd_faultmap_last_bits_per_map Fault density of the latest full run.")
	fmt.Fprintln(w, "# TYPE sramd_faultmap_last_bits_per_map gauge")
	fmt.Fprintf(w, "sramd_faultmap_last_bits_per_map %g\n", fs.LastBitsPerMap)

	// Noise-scan counters: the dynamic-retention experiment's ensemble
	// spend plus the latest measured tightening of the DRV threshold.
	ns := noisescan.Stats()
	fmt.Fprintln(w, "# HELP sramd_noise_scans_total Completed full flip-probability scans.")
	fmt.Fprintln(w, "# TYPE sramd_noise_scans_total counter")
	fmt.Fprintf(w, "sramd_noise_scans_total %d\n", ns.Scans)
	fmt.Fprintln(w, "# HELP sramd_noise_partials_total Completed noise-scan shard partials.")
	fmt.Fprintln(w, "# TYPE sramd_noise_partials_total counter")
	fmt.Fprintf(w, "sramd_noise_partials_total %d\n", ns.Partials)
	fmt.Fprintln(w, "# HELP sramd_noise_points_total Rail points measured across all scans.")
	fmt.Fprintln(w, "# TYPE sramd_noise_points_total counter")
	fmt.Fprintf(w, "sramd_noise_points_total %d\n", ns.Points)
	fmt.Fprintln(w, "# HELP sramd_noise_flips_total Flipped ensemble members observed across all scans.")
	fmt.Fprintln(w, "# TYPE sramd_noise_flips_total counter")
	fmt.Fprintf(w, "sramd_noise_flips_total %d\n", ns.Flips)
	fmt.Fprintln(w, "# HELP sramd_noise_last_tighten_volts DRV tightening of the latest full scan.")
	fmt.Fprintln(w, "# TYPE sramd_noise_last_tighten_volts gauge")
	fmt.Fprintf(w, "sramd_noise_last_tighten_volts %g\n", ns.LastTighten)

	// Diagnosis counters: the matcher economy (how much of the
	// dictionary each signature touched) and streaming-ingest volume.
	ds := diag.Stats()
	fmt.Fprintln(w, "# HELP sramd_diag_matches_total Completed dictionary matches (either matcher).")
	fmt.Fprintln(w, "# TYPE sramd_diag_matches_total counter")
	fmt.Fprintf(w, "sramd_diag_matches_total %d\n", ds.Matches)
	fmt.Fprintln(w, "# HELP sramd_diag_exact_total Matches that hit distance zero.")
	fmt.Fprintln(w, "# TYPE sramd_diag_exact_total counter")
	fmt.Fprintf(w, "sramd_diag_exact_total %d\n", ds.Exact)
	fmt.Fprintln(w, "# HELP sramd_diag_fallbacks_total Index queries served by the linear scan.")
	fmt.Fprintln(w, "# TYPE sramd_diag_fallbacks_total counter")
	fmt.Fprintf(w, "sramd_diag_fallbacks_total %d\n", ds.Fallbacks)
	fmt.Fprintln(w, "# HELP sramd_diag_scanned_total Full distance evaluations across all matches.")
	fmt.Fprintln(w, "# TYPE sramd_diag_scanned_total counter")
	fmt.Fprintf(w, "sramd_diag_scanned_total %d\n", ds.Scanned)
	fmt.Fprintln(w, "# HELP sramd_diag_mean_scanned Mean distance evaluations per match since start.")
	fmt.Fprintln(w, "# TYPE sramd_diag_mean_scanned gauge")
	fmt.Fprintf(w, "sramd_diag_mean_scanned %g\n", ds.MeanScanned())
	fmt.Fprintln(w, "# HELP sramd_diag_stream_requests_total /v1/diagnose requests served.")
	fmt.Fprintln(w, "# TYPE sramd_diag_stream_requests_total counter")
	fmt.Fprintf(w, "sramd_diag_stream_requests_total %d\n", ds.StreamRequests)
	fmt.Fprintln(w, "# HELP sramd_diag_stream_signatures_total Signatures diagnosed over the stream.")
	fmt.Fprintln(w, "# TYPE sramd_diag_stream_signatures_total counter")
	fmt.Fprintf(w, "sramd_diag_stream_signatures_total %d\n", ds.StreamSignatures)
	fmt.Fprintln(w, "# HELP sramd_diag_stream_errors_total Malformed or failed stream lines.")
	fmt.Fprintln(w, "# TYPE sramd_diag_stream_errors_total counter")
	fmt.Fprintf(w, "sramd_diag_stream_errors_total %d\n", ds.StreamErrors)
	fmt.Fprintln(w, "# HELP sramd_diag_stream_bytes_total Request bytes consumed by the stream.")
	fmt.Fprintln(w, "# TYPE sramd_diag_stream_bytes_total counter")
	fmt.Fprintf(w, "sramd_diag_stream_bytes_total %d\n", ds.StreamBytes)

	fmt.Fprintln(w, "# HELP sramd_job_duration_seconds Job execution latency.")
	fmt.Fprintln(w, "# TYPE sramd_job_duration_seconds histogram")
	cum := int64(0)
	for i, le := range s.DurationBuckets {
		cum += s.DurationCounts[i]
		fmt.Fprintf(w, "sramd_job_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += s.DurationCounts[len(s.DurationBuckets)]
	fmt.Fprintf(w, "sramd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "sramd_job_duration_seconds_sum %g\n", s.DurationSum)
	fmt.Fprintf(w, "sramd_job_duration_seconds_count %d\n", s.DurationCount)
}

// snapshot is the expvar view: the same numbers as /metrics, as a map.
func snapshot(mgr *jobs.Manager, st *store.Store) map[string]any {
	s := mgr.Stats()
	sp := spice.Stats()
	es := engine.Stats()
	ys := yield.Stats()
	fs := faultmap.Stats()
	ds := diag.Stats()
	ns := noisescan.Stats()
	out := map[string]any{
		"noise_scans":             ns.Scans,
		"noise_partials":          ns.Partials,
		"noise_points":            ns.Points,
		"noise_flips":             ns.Flips,
		"noise_last_tighten":      ns.LastTighten,
		"spice_noise_evals":       sp.NoiseEvals,
		"spice_ensemble_runs":     sp.EnsembleRuns,
		"spice_ensemble_steps":    sp.EnsembleSteps,
		"diag_matches":            ds.Matches,
		"diag_exact":              ds.Exact,
		"diag_fallbacks":          ds.Fallbacks,
		"diag_scanned":            ds.Scanned,
		"diag_stream_requests":    ds.StreamRequests,
		"diag_stream_signatures":  ds.StreamSignatures,
		"diag_stream_errors":      ds.StreamErrors,
		"diag_stream_bytes":       ds.StreamBytes,
		"faultmap_runs":           fs.Runs,
		"faultmap_partials":       fs.Partials,
		"faultmap_maps":           fs.Maps,
		"faultmap_fault_bits":     fs.FaultBits,
		"faultmap_detected":       fs.Detected,
		"faultmap_dropped":        fs.Dropped,
		"faultmap_last_best":      fs.LastBestCoverage,
		"faultmap_last_bits_map":  fs.LastBitsPerMap,
		"yield_runs":              ys.Runs,
		"yield_partials":          ys.Partials,
		"yield_screened":          ys.Screens,
		"yield_escalations":       ys.Escalations,
		"yield_exact_solves":      ys.ExactSolves,
		"yield_failures":          ys.Failures,
		"yield_last_ess":          ys.LastESS,
		"yield_last_shift_sigma":  ys.LastShiftNorm,
		"yield_last_tail_sigma":   ys.LastSigma,
		"engine_screened":         es.Screened,
		"engine_escalations":      es.Escalations,
		"engine_transient_direct": es.TransientDirect,
		"engine_cal_solves":       es.CalSolves,
		"engine_tables":           es.Tables,
		"engine_exact_inserts":    es.ExactInserts,
		"jobs_queued":             s.Queued,
		"jobs_running":            s.Running,
		"jobs_done":               s.Done,
		"jobs_failed":             s.Failed,
		"jobs_canceled":           s.Canceled,
		"cache_hits":              s.CacheHits,
		"cache_misses":            s.CacheMisses,
		"sweep_tasks_done":        s.TasksDone,
		"job_seconds_sum":         s.DurationSum,
		"jobs_measured":           s.DurationCount,
		"spice_solves":            sp.Solves,
		"spice_newton_iters":      sp.NewtonIters,
		"spice_warm_starts":       sp.WarmStarts,
		"spice_cold_restarts":     sp.ColdRestarts,
		"spice_gmin_fallbacks":    sp.GminFallbacks,
		"spice_source_fallbacks":  sp.SourceFallbacks,
		"spice_iters_per_solve":   sp.ItersPerSolve(),
	}
	if st != nil {
		out["store_entries"] = st.Len()
	}
	return out
}
