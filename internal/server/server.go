// Package server exposes the jobs subsystem as a JSON HTTP API — the
// serving layer of cmd/sramd:
//
//	POST   /v1/jobs             submit a job spec (202; 200 on cache hit)
//	POST   /v1/batch            NDJSON specs in, streamed results out
//	GET    /v1/jobs             list job records
//	GET    /v1/jobs/{id}        poll status and progress
//	GET    /v1/jobs/{id}/result fetch the result bytes (CLI-identical)
//	DELETE /v1/jobs/{id}        cancel an active job / forget a finished one
//	GET    /v1/results/{key}    serve a stored result by content address
//	POST   /v1/diagnose         NDJSON signatures in, streamed diagnoses out
//	GET    /v1/diagnose         loaded-dictionary info
//	GET    /v1/load             queue pressure (for coordinators/monitors)
//	GET    /healthz             liveness probe
//	GET    /metrics             Prometheus-text counters and histograms
//
// Results are exactly the bytes the CLI tools print, so `curl .../result`
// is interchangeable with running defectchar/drv/flow locally.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"sync"

	"sramtest/internal/jobs"
	"sramtest/internal/store"
)

// maxSpecBytes bounds a submitted spec; real specs are tiny.
const maxSpecBytes = 1 << 20

// Server routes the sramd HTTP API onto a job manager and its store.
type Server struct {
	mgr *jobs.Manager
	st  *store.Store // may be nil (no caching)
	mux *http.ServeMux

	// BatchInflight bounds concurrently executing specs per /v1/batch
	// request; intake beyond it waits (backpressure). <= 0 selects the
	// default of 16. Set before serving.
	BatchInflight int

	// Diag, when non-nil, serves the streaming POST /v1/diagnose
	// endpoint; DiagInfo describes it on GET /v1/diagnose. Set before
	// serving (sramd -diag-dict).
	Diag     Diagnoser
	DiagInfo DiagInfo
}

// New builds the API handler around mgr; st (the manager's store, may be
// nil) is consulted for metrics and serves /v1/results/{key}.
func New(mgr *jobs.Manager, st *store.Store) *Server {
	s := &Server{mgr: mgr, st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultByKey)
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("GET /v1/diagnose", s.handleDiagnoseInfo)
	s.mux.HandleFunc("GET /v1/load", s.handleLoad)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed spec: "+err.Error())
		return
	}
	st, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrBadSpec):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, jobs.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	case st.Cached:
		writeJSON(w, http.StatusOK, st) // cache hit: already done
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, err := s.mgr.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	switch st.State {
	case jobs.StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(res)
	case jobs.StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error, State: string(st.State)})
	case jobs.StateCanceled:
		writeJSON(w, http.StatusGone, errorBody{Error: "job canceled", State: string(st.State)})
	default: // queued or running: not ready yet
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished", State: string(st.State)})
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.mgr, s.st)
}

// publishOnce guards the process-global expvar name.
var publishOnce sync.Once

// PublishExpvar exposes the manager/store snapshot under the expvar name
// "sramd" (for the stdlib /debug/vars endpoint). Safe to call once per
// process; later calls are no-ops.
func (s *Server) PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("sramd", expvar.Func(func() any {
			return snapshot(s.mgr, s.st)
		}))
	})
}
