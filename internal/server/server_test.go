package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sramtest/internal/diag"
	"sramtest/internal/jobs"
	"sramtest/internal/store"
)

// newTestServer wires a server around a fake runner so handler tests are
// instant; pass nil run for the real CLI-identical runners.
func newTestServer(t *testing.T, run jobs.RunFunc) (*Server, *jobs.Manager, *store.Store) {
	t.Helper()
	st, err := store.Open("", 32)
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(jobs.Config{Workers: 2, QueueDepth: 8, Store: st, Run: run})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return New(mgr, st), mgr, st
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, jobs.Status) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var st jobs.Status
	if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		_ = json.Unmarshal(w.Body.Bytes(), &st)
	}
	return w, st
}

func pollDone(t *testing.T, h http.Handler, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		w, st := doJSON(t, h, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d: %s", id, w.Code, w.Body)
		}
		switch st.State {
		case jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Status{}
}

func TestSubmitPollResultLifecycle(t *testing.T) {
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		return []byte("fake table\n"), nil
	})

	w, st := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"exp","exp":{"samples":8}}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", w.Code, w.Body)
	}
	if st.ID == "" || st.Kind != jobs.KindExp {
		t.Fatalf("submit status = %+v", st)
	}

	done := pollDone(t, srv, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("final state = %s (%s)", done.State, done.Error)
	}

	w, _ = doJSON(t, srv, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusOK || w.Body.String() != "fake table\n" {
		t.Fatalf("result: HTTP %d %q", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("result Content-Type = %q", ct)
	}

	// The listing shows the record.
	w, _ = doJSON(t, srv, "GET", "/v1/jobs", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), st.ID) {
		t.Errorf("list: HTTP %d %s", w.Code, w.Body)
	}
}

func TestSubmitErrorPaths(t *testing.T) {
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		return []byte("x"), nil
	})

	for name, body := range map[string]string{
		"malformed json": `{"kind":`,
		"unknown kind":   `{"kind":"nope"}`,
		"unknown field":  `{"kind":"exp","exp":{"samples":8},"zzz":1}`,
		"bad defect":     `{"kind":"charac","charac":{"defects":[99]}}`,
		"missing exp":    `{"kind":"exp"}`,
	} {
		w, _ := doJSON(t, srv, "POST", "/v1/jobs", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, w.Code)
		}
	}
}

func TestUnknownJob404s(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	for _, req := range [][2]string{
		{"GET", "/v1/jobs/j999999"},
		{"GET", "/v1/jobs/j999999/result"},
		{"DELETE", "/v1/jobs/j999999"},
	} {
		w, _ := doJSON(t, srv, req[0], req[1], "")
		if w.Code != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", req[0], req[1], w.Code)
		}
	}
}

func TestResultNotReadyConflicts(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return []byte("late"), nil
	})
	_, st := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"exp","exp":{"samples":8}}`)
	w, _ := doJSON(t, srv, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusConflict {
		t.Errorf("unfinished result: HTTP %d, want 409", w.Code)
	}
}

func TestCancelRunningJobVisibleOverHTTP(t *testing.T) {
	started := make(chan struct{})
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, st := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"exp","exp":{"samples":8}}`)
	<-started
	if w, _ := doJSON(t, srv, "DELETE", "/v1/jobs/"+st.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", w.Code)
	}
	final := pollDone(t, srv, st.ID)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if w, _ := doJSON(t, srv, "GET", "/v1/jobs/"+st.ID+"/result", ""); w.Code != http.StatusGone {
		t.Errorf("canceled result: HTTP %d, want 410", w.Code)
	}
}

func TestFailedJobResultIs500(t *testing.T) {
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		return nil, fmt.Errorf("solver diverged")
	})
	_, st := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"exp","exp":{"samples":8}}`)
	if final := pollDone(t, srv, st.ID); final.State != jobs.StateFailed {
		t.Fatalf("state = %s", final.State)
	}
	w, _ := doJSON(t, srv, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusInternalServerError || !strings.Contains(w.Body.String(), "solver diverged") {
		t.Errorf("failed result: HTTP %d %s", w.Code, w.Body)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	srv, _, _ := newTestServer(t, func(ctx context.Context, spec jobs.Spec) ([]byte, error) {
		return []byte("x"), nil
	})
	w, _ := doJSON(t, srv, "GET", "/healthz", "")
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz: HTTP %d %q", w.Code, w.Body)
	}

	_, st := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"exp","exp":{"samples":8}}`)
	pollDone(t, srv, st.ID)

	w, _ = doJSON(t, srv, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`sramd_jobs{state="done"} 1`,
		"sramd_cache_misses_total 1",
		"sramd_cache_hit_ratio 0",
		"sramd_job_duration_seconds_bucket{le=\"+Inf\"} 1",
		"sramd_job_duration_seconds_count 1",
		"sramd_store_entries 1",
		"sramd_yield_runs_total",
		`sramd_yield_decisions_total{outcome="screened"}`,
		"sramd_yield_last_ess",
		"sramd_faultmap_runs_total",
		"sramd_faultmap_maps_total",
		"sramd_faultmap_last_best_coverage",
		"sramd_noise_scans_total",
		"sramd_noise_flips_total",
		"sramd_noise_last_tighten_volts",
		"sramd_spice_noise_evals_total",
		"sramd_spice_ensemble_runs_total",
		"sramd_spice_ensemble_steps_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestEndToEndCharacJob exercises the acceptance path with the REAL
// runner: a tiny Table II job runs on the sweep engine, reports
// progress, lands in the store, and a byte-identical re-submission is a
// cache hit visible in /metrics.
func TestEndToEndCharacJob(t *testing.T) {
	srv, _, st := newTestServer(t, nil)

	const spec = `{"kind":"charac","charac":{"defects":[16],"caseStudies":[1]}}`
	w, first := doJSON(t, srv, "POST", "/v1/jobs", spec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", w.Code, w.Body)
	}
	done := pollDone(t, srv, first.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.Total == 0 || done.Done != done.Total {
		t.Errorf("progress = %d/%d, want a completed nonzero sweep tally", done.Done, done.Total)
	}
	w, _ = doJSON(t, srv, "GET", "/v1/jobs/"+first.ID+"/result", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "Table II") {
		t.Fatalf("result: HTTP %d:\n%s", w.Code, w.Body)
	}
	result := append([]byte(nil), w.Body.Bytes()...)
	if st.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", st.Len())
	}

	// Byte-identical re-submission (different spelling, same canonical
	// form): answered from the store, HTTP 200, no recompute.
	w, second := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"charac","charac":{"defects":[16,16],"caseStudies":[1]}}`)
	if w.Code != http.StatusOK || !second.Cached || second.State != jobs.StateDone {
		t.Fatalf("resubmit: HTTP %d cached=%v state=%s", w.Code, second.Cached, second.State)
	}
	w, _ = doJSON(t, srv, "GET", "/v1/jobs/"+second.ID+"/result", "")
	if !bytes.Equal(w.Body.Bytes(), result) {
		t.Error("cached result bytes differ from the computed ones")
	}

	w, _ = doJSON(t, srv, "GET", "/metrics", "")
	if body := w.Body.String(); !strings.Contains(body, "sramd_cache_hits_total 1") {
		t.Errorf("cache hit not visible in metrics:\n%s", body)
	}
}

// TestEndToEndDiagJob runs a real (reduced) fault-dictionary build
// through the HTTP API: the job bytes must be the versioned dictionary
// artifact, identical to what diag.Build encodes (and therefore to
// `diagnose build -o -`), and an equivalent re-submission must be served
// from the store.
func TestEndToEndDiagJob(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)

	const spec = `{"kind":"diag","diag":{"defects":[16,12],"caseStudies":[1],"decades":[100000],"baseOnly":true}}`
	w, first := doJSON(t, srv, "POST", "/v1/jobs", spec)
	if w.Code != http.StatusAccepted || first.Kind != jobs.KindDiag {
		t.Fatalf("submit: HTTP %d kind=%s: %s", w.Code, first.Kind, w.Body)
	}
	done := pollDone(t, srv, first.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	w, _ = doJSON(t, srv, "GET", "/v1/jobs/"+first.ID+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: HTTP %d:\n%s", w.Code, w.Body)
	}
	result := append([]byte(nil), w.Body.Bytes()...)

	// The artifact decodes and covers the requested grid.
	d, err := diag.Decode(result)
	if err != nil {
		t.Fatalf("job bytes are not a dictionary: %v", err)
	}
	if len(d.Entries) == 0 || len(d.Extra) != 0 {
		t.Errorf("dictionary: %d entries, %d extra conds (want >0, 0)", len(d.Entries), len(d.Extra))
	}

	// Byte-identity with the direct runner (the CLI's code path).
	direct, err := jobs.Run(context.Background(), jobs.Spec{Kind: jobs.KindDiag, Diag: &jobs.DiagSpec{
		Defects: []int{12, 16}, CaseStudies: []int{1}, Decades: []float64{1e5}, BaseOnly: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, direct) {
		t.Error("served dictionary differs from the direct runner's bytes")
	}

	// Equivalent spelling (duplicate defect, unsorted) is a cache hit.
	w, second := doJSON(t, srv, "POST", "/v1/jobs", `{"kind":"diag","diag":{"defects":[16,12,16],"caseStudies":[1],"decades":[100000],"baseOnly":true}}`)
	if w.Code != http.StatusOK || !second.Cached || second.State != jobs.StateDone {
		t.Fatalf("resubmit: HTTP %d cached=%v state=%s", w.Code, second.Cached, second.State)
	}
	w, _ = doJSON(t, srv, "GET", "/v1/jobs/"+second.ID+"/result", "")
	if !bytes.Equal(w.Body.Bytes(), result) {
		t.Error("cached dictionary bytes differ from the computed ones")
	}
}
