// Package bist models a memory built-in self-test controller executing
// March tests — the industrial embodiment of the paper's test solution
// (a production SRAM runs March m-LZ from an on-chip BIST engine, not
// from ATE software). The model is cycle-accurate at the granularity the
// paper's test-time accounting uses: one clock per memory operation, a
// programmable dwell counter for the DSM/LSM phases, an address counter
// with up/down stepping, and a fail log with a bounded capture memory.
//
// The controller consumes a compiled microcode Program; Compile
// translates any march.Test (including user tests from march.ParseTest)
// into that microcode, and the result of a full run is bit-equivalent to
// march.Run — a property the test suite checks against the whole fault
// library.
package bist

import (
	"fmt"

	"sramtest/internal/march"
)

// OpCode is a BIST microcode operation.
type OpCode int

// Microcode operations.
const (
	OpRead0 OpCode = iota // read, compare against background
	OpRead1               // read, compare against ~background
	OpWrite0
	OpWrite1
	OpSleepDS // assert SLEEP (deep sleep), wait DwellCycles
	OpSleepLS // light sleep, wait DwellCycles
	OpWake    // deassert SLEEP, wake-up phase
)

// String implements fmt.Stringer.
func (o OpCode) String() string {
	return [...]string{"r0", "r1", "w0", "w1", "sleep-ds", "sleep-ls", "wake"}[o]
}

// Instr is one microcode word: an operation plus loop control. Ops with
// PerAddress=true execute once per address of the current element loop;
// the last instruction of an element carries EndElement so the sequencer
// advances the address counter.
type Instr struct {
	Op         OpCode
	PerAddress bool
	EndElement bool
	Descending bool // address counter direction for this element
}

// Program is a compiled March test.
type Program struct {
	Name        string
	Instrs      []Instr
	DwellCycles int // clocks spent in each sleep state
}

// Compile translates a March test into microcode. cycle is the BIST/SRAM
// clock period used to convert the test's dwell into cycles.
func Compile(t march.Test, cycle float64) (*Program, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cycle <= 0 {
		return nil, fmt.Errorf("bist: invalid cycle time %g", cycle)
	}
	p := &Program{Name: t.Name, DwellCycles: int(t.Dwell / cycle)}
	for _, e := range t.Elems {
		if e.IsMode() {
			var op OpCode
			switch e.Ops[0] {
			case march.DSM:
				op = OpSleepDS
			case march.LSM:
				op = OpSleepLS
			case march.WUP:
				op = OpWake
			}
			p.Instrs = append(p.Instrs, Instr{Op: op})
			continue
		}
		desc := e.Order == march.Down
		for i, mop := range e.Ops {
			var op OpCode
			switch mop {
			case march.R0:
				op = OpRead0
			case march.R1:
				op = OpRead1
			case march.W0:
				op = OpWrite0
			case march.W1:
				op = OpWrite1
			default:
				return nil, fmt.Errorf("bist: cannot compile op %s", mop)
			}
			p.Instrs = append(p.Instrs, Instr{
				Op:         op,
				PerAddress: true,
				EndElement: i == len(e.Ops)-1,
				Descending: desc,
			})
		}
	}
	return p, nil
}

// String disassembles the program.
func (p *Program) String() string {
	s := fmt.Sprintf("program %q (dwell %d cycles)\n", p.Name, p.DwellCycles)
	for i, in := range p.Instrs {
		flags := ""
		if in.PerAddress {
			flags += " per-addr"
			if in.Descending {
				flags += " desc"
			}
			if in.EndElement {
				flags += " end"
			}
		}
		s += fmt.Sprintf("  %2d: %-8s%s\n", i, in.Op, flags)
	}
	return s
}
