package bist

import (
	"fmt"

	"sramtest/internal/march"
)

// State of the controller FSM.
type State int

// Controller states.
const (
	Idle State = iota
	Running
	Sleeping
	Done
	Errored
)

// String implements fmt.Stringer.
func (s State) String() string {
	return [...]string{"idle", "running", "sleeping", "done", "errored"}[s]
}

// FailCapacity is the default depth of the on-chip fail-capture memory;
// further miscompares only increment the counter (real BIST engines do
// the same). SetFailCapacity resizes it per controller.
const FailCapacity = 64

// FailLog is the structured export of the fail-capture memory: the
// recorded miscompares (address, element index, expected/read word) plus
// the total count, so callers can tell a complete capture from an
// overflowed one. It is the diagnosis-signature source of internal/diag;
// the march software executor's Report.Failures carries the same records,
// and the two are provably equivalent (see the diag test suite).
type FailLog struct {
	// Entries are the captured miscompares in occurrence order.
	Entries []march.Failure
	// Total counts every miscompare, recorded or not.
	Total int
	// Capacity is the capture depth the log was recorded with.
	Capacity int
}

// Overflowed reports whether miscompares beyond the capture depth were
// dropped (only counted).
func (l FailLog) Overflowed() bool { return l.Total > len(l.Entries) }

// Controller is the BIST engine: a program sequencer, address counter,
// background register, dwell counter, comparator and fail log.
type Controller struct {
	prog     *Program
	mem      march.Memory
	bg       uint64 // data background register
	failCap  int    // fail-capture depth (always bounded; see SetFailCapacity)
	failHook func(march.Failure)

	state   State
	pc      int // start instruction of the current element
	opIdx   int // offset inside the current element
	elemLen int // instruction count of the current element
	addr    int
	elemOrd int // ordinal of the current element (matches march.Test.Elems)
	dwell   int // remaining sleep cycles

	cycles   int64
	failures []march.Failure
	total    int
	runErr   error
}

// New builds a controller over a compiled program and a memory.
func New(p *Program, m march.Memory) *Controller {
	c := &Controller{prog: p, mem: m, state: Idle, failCap: FailCapacity}
	return c
}

// SetBackground loads the data background register (default: solid 0).
func (c *Controller) SetBackground(w uint64) { c.bg = w }

// SetFailCapacity resizes the fail-capture memory: n > 0 sets the depth,
// n == 0 restores the default FailCapacity, n < 0 selects the full-
// signature capture mode that diagnosis needs (mirroring
// march.RunOptions.CaptureAll). Like the software executor, the full
// mode stays bounded at march.CaptureLimit — an array-scale fault map
// where most cells miscompare only counts beyond the limit; streaming
// consumers observe every miscompare through SetFailHook. Explicit
// depths above the limit are clamped to it.
func (c *Controller) SetFailCapacity(n int) {
	switch {
	case n == 0:
		c.failCap = FailCapacity
	case n < 0 || n > march.CaptureLimit:
		c.failCap = march.CaptureLimit
	default:
		c.failCap = n
	}
}

// SetFailHook installs a streaming observer called on every miscompare,
// including those beyond the capture depth — the bounded-memory path
// array-scale consumers (internal/faultmap) use to accumulate per-bit
// detection maps without materializing the fail log.
func (c *Controller) SetFailHook(fn func(march.Failure)) { c.failHook = fn }

// FailLog exports the fail-capture memory observed so far.
func (c *Controller) FailLog() FailLog {
	return FailLog{
		Entries:  append([]march.Failure(nil), c.failures...),
		Total:    c.total,
		Capacity: c.failCap,
	}
}

// State returns the FSM state.
func (c *Controller) State() State { return c.state }

// Cycles returns the clock cycles consumed so far.
func (c *Controller) Cycles() int64 { return c.cycles }

// Result is the outcome of a completed run.
type Result struct {
	Program  string
	Cycles   int64
	Failures []march.Failure
	Total    int // total miscompares (≥ len(Failures))
	Capacity int // fail-capture depth of the run (<0 = unbounded)
}

// Pass reports a clean run.
func (r Result) Pass() bool { return r.Total == 0 }

// FailLog exports the run's fail-capture memory in structured form.
func (r Result) FailLog() FailLog {
	return FailLog{Entries: r.Failures, Total: r.Total, Capacity: r.Capacity}
}

// Step advances the engine by one clock cycle. It returns true when the
// program has completed (or errored; check Err).
func (c *Controller) Step() bool {
	switch c.state {
	case Done, Errored:
		return true
	case Idle:
		c.state = Running
		c.enterElement()
	}
	c.cycles++

	if c.state == Sleeping {
		c.dwell--
		if c.dwell <= 0 {
			c.advanceElement()
		}
		return c.state == Done || c.state == Errored
	}

	in := c.prog.Instrs[c.pc+c.opIdx]
	if !in.PerAddress {
		c.execMode(in)
		return c.state == Done || c.state == Errored
	}

	c.execCell(in)
	if c.state == Errored {
		return true
	}
	c.opIdx++
	if c.opIdx == c.elemLen {
		c.opIdx = 0
		if c.advanceAddr(in.Descending) {
			c.advanceElement()
		}
	}
	return c.state == Done || c.state == Errored
}

// Err returns the error that aborted the run, if any.
func (c *Controller) Err() error { return c.runErr }

// Run steps the engine to completion.
func (c *Controller) Run() (Result, error) {
	for !c.Step() {
	}
	if c.runErr != nil {
		return Result{}, c.runErr
	}
	return Result{
		Program:  c.prog.Name,
		Cycles:   c.cycles,
		Failures: c.failures,
		Total:    c.total,
		Capacity: c.failCap,
	}, nil
}

// enterElement initializes the sequencer for the element at pc.
func (c *Controller) enterElement() {
	if c.pc >= len(c.prog.Instrs) {
		c.state = Done
		return
	}
	in := c.prog.Instrs[c.pc]
	if !in.PerAddress {
		c.elemLen = 1
		return
	}
	c.elemLen = 0
	for i := c.pc; i < len(c.prog.Instrs); i++ {
		c.elemLen++
		if c.prog.Instrs[i].EndElement {
			break
		}
	}
	c.opIdx = 0
	if in.Descending {
		c.addr = c.mem.Size() - 1
	} else {
		c.addr = 0
	}
}

// advanceElement moves to the next element.
func (c *Controller) advanceElement() {
	c.pc += c.elemLen
	c.elemOrd++
	c.state = Running
	c.enterElement()
}

// advanceAddr steps the address counter; true when the loop is complete.
func (c *Controller) advanceAddr(desc bool) bool {
	if desc {
		c.addr--
		return c.addr < 0
	}
	c.addr++
	return c.addr >= c.mem.Size()
}

func (c *Controller) fail(op int, want, got uint64) {
	c.total++
	f := march.Failure{Element: c.elemOrd, OpIndex: op, Addr: c.addr, Expected: want, Got: got}
	if c.failHook != nil {
		c.failHook(f)
	}
	if c.failCap < 0 || len(c.failures) < c.failCap {
		c.failures = append(c.failures, f)
	}
}

func (c *Controller) abort(err error) {
	c.runErr = err
	c.state = Errored
}

func (c *Controller) execMode(in Instr) {
	switch in.Op {
	case OpSleepDS, OpSleepLS:
		// The behavioural memory applies retention effects at entry; the
		// controller then burns the dwell cycles.
		var err error
		dwellSeconds := float64(c.prog.DwellCycles) * cycleOf(c.mem)
		if in.Op == OpSleepDS {
			err = c.mem.EnterDS(dwellSeconds)
		} else {
			err = c.mem.EnterLS(dwellSeconds)
		}
		if err != nil {
			c.abort(fmt.Errorf("bist: %s: %w", in.Op, err))
			return
		}
		if c.prog.DwellCycles > 1 {
			c.state = Sleeping
			c.dwell = c.prog.DwellCycles - 1 // this cycle counts as the first
			return
		}
		c.advanceElement()
	case OpWake:
		if err := c.mem.WakeUp(); err != nil {
			c.abort(fmt.Errorf("bist: wake: %w", err))
			return
		}
		c.advanceElement()
	}
}

func (c *Controller) execCell(in Instr) {
	switch in.Op {
	case OpWrite0:
		if err := c.mem.Write(c.addr, c.bg); err != nil {
			c.abort(err)
		}
	case OpWrite1:
		if err := c.mem.Write(c.addr, ^c.bg); err != nil {
			c.abort(err)
		}
	case OpRead0, OpRead1:
		want := c.bg
		if in.Op == OpRead1 {
			want = ^c.bg
		}
		got, err := c.mem.Read(c.addr)
		if err != nil {
			c.abort(err)
			return
		}
		if got != want {
			c.fail(c.opIdx, want, got)
		}
	}
}

// cycleOf mirrors march's accounting: devices exposing Cycle() use it.
func cycleOf(m march.Memory) float64 {
	if ct, ok := m.(interface{ Cycle() float64 }); ok {
		return ct.Cycle()
	}
	return 10e-9
}
