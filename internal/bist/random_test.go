package bist

import (
	"math/rand"
	"testing"

	"sramtest/internal/fault"
	"sramtest/internal/march"
	"sramtest/internal/sram"
)

// randomTest generates a random structurally valid March test: a few cell
// elements with random orders/ops, optionally interleaved with DSM/WUP or
// LSM/WUP pairs.
func randomTest(rng *rand.Rand) march.Test {
	t := march.Test{Name: "random", Dwell: 50e-9} // tiny dwell keeps runs fast
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			sleep := march.DSM
			if rng.Intn(2) == 0 {
				sleep = march.LSM
			}
			t.Elems = append(t.Elems,
				march.Element{Order: march.Any, Ops: []march.OpKind{sleep}},
				march.Element{Order: march.Any, Ops: []march.OpKind{march.WUP}},
			)
		}
		order := []march.Order{march.Up, march.Down, march.Any}[rng.Intn(3)]
		nops := 1 + rng.Intn(4)
		ops := make([]march.OpKind, nops)
		for k := range ops {
			ops[k] = []march.OpKind{march.R0, march.R1, march.W0, march.W1}[rng.Intn(4)]
		}
		t.Elems = append(t.Elems, march.Element{Order: order, Ops: ops})
	}
	return t
}

// randomFaults generates a random fault set.
func randomFaults(rng *rand.Rand) []fault.Fault {
	kinds := []fault.Kind{
		fault.SAF0, fault.SAF1, fault.TFUp, fault.TFDown, fault.RDF,
		fault.IRF, fault.WDF, fault.CFin, fault.CFid, fault.CFst, fault.PGF,
	}
	n := rng.Intn(4)
	out := make([]fault.Fault, 0, n)
	for i := 0; i < n; i++ {
		f := fault.Fault{
			Kind:   kinds[rng.Intn(len(kinds))],
			Victim: fault.Cell{Addr: rng.Intn(sram.Words), Bit: rng.Intn(sram.Bits)},
			Val:    rng.Intn(2) == 0,
			AggVal: rng.Intn(2) == 0,
		}
		f.Aggressor = fault.Cell{Addr: rng.Intn(sram.Words), Bit: rng.Intn(sram.Bits)}
		if f.Aggressor == f.Victim {
			f.Aggressor.Bit = (f.Aggressor.Bit + 1) % sram.Bits
		}
		out = append(out, f)
	}
	return out
}

// TestRandomEquivalence is the strongest BIST correctness property: for
// random March tests against random fault populations, the cycle-accurate
// engine and the reference software executor must report identical
// miscompares. (The parse/print round trip of the random tests rides
// along for free.)
func TestRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20130318)) // the paper's conference date
	for trial := 0; trial < 40; trial++ {
		tst := randomTest(rng)
		if err := tst.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid test: %v", trial, err)
		}
		// Parse/print round trip.
		back, err := march.ParseTest(tst.Name, tst.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		back.Dwell = tst.Dwell
		if back.String() != tst.String() {
			t.Fatalf("trial %d: notation round trip:\n %s\n %s", trial, tst, back)
		}

		faults := randomFaults(rng)
		build := func() *sram.SRAM {
			s := sram.New()
			fault.NewInjector(faults...).Attach(s)
			return s
		}
		rep, err := march.Run(tst, build())
		if err != nil {
			t.Fatalf("trial %d march: %v", trial, err)
		}
		prog, err := Compile(tst, sram.CycleTime)
		if err != nil {
			t.Fatalf("trial %d compile: %v", trial, err)
		}
		res, err := New(prog, build()).Run()
		if err != nil {
			t.Fatalf("trial %d bist: %v", trial, err)
		}
		if rep.TotalMiscompares != res.Total {
			t.Fatalf("trial %d: %s with %v\n march: %d miscompares\n bist:  %d",
				trial, tst, faults, rep.TotalMiscompares, res.Total)
		}
		for i := range rep.Failures {
			if i >= len(res.Failures) {
				break
			}
			if rep.Failures[i] != res.Failures[i] {
				t.Fatalf("trial %d: failure %d differs: %v vs %v", trial, i, rep.Failures[i], res.Failures[i])
			}
		}
	}
}
