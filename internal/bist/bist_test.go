package bist

import (
	"strings"
	"testing"

	"sramtest/internal/fault"
	"sramtest/internal/march"
	"sramtest/internal/process"
	"sramtest/internal/sram"
)

func compileMust(t *testing.T, tst march.Test) *Program {
	t.Helper()
	p, err := Compile(tst, sram.CycleTime)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileMLZ(t *testing.T) {
	p := compileMust(t, march.MarchMLZ())
	// w1 | sleep | wake | r1 w0 r0 | sleep | wake | r0  = 9 instructions.
	if len(p.Instrs) != 9 {
		t.Fatalf("compiled %d instructions, want 9:\n%s", len(p.Instrs), p)
	}
	if p.DwellCycles != int(1e-3/sram.CycleTime) {
		t.Errorf("dwell cycles %d", p.DwellCycles)
	}
	if !strings.Contains(p.String(), "sleep-ds") {
		t.Errorf("disassembly:\n%s", p)
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(march.Test{Name: "bad", Elems: nil}, sram.CycleTime); err == nil {
		t.Error("empty test should not compile")
	}
	if _, err := Compile(march.MATSPlus(), 0); err == nil {
		t.Error("zero cycle time should not compile")
	}
}

func TestCleanRunPasses(t *testing.T) {
	for _, tst := range march.Library() {
		p := compileMust(t, tst)
		res, err := New(p, sram.New()).Run()
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Pass() {
			t.Errorf("%s: clean memory failed: %v", tst.Name, res.Failures)
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	// March m-LZ on N words: 5N op cycles + 2·dwell cycles + 2 wake cycles.
	p := compileMust(t, march.MarchMLZ())
	res, err := New(p, sram.New()).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(5*sram.Words) + 2*int64(p.DwellCycles) + 2
	if res.Cycles != want {
		t.Errorf("cycles %d, want %d", res.Cycles, want)
	}
	// Cross-check against the march package's test-time model.
	tt := march.MarchMLZ().TestTime(sram.Words, sram.CycleTime)
	if got := float64(res.Cycles) * sram.CycleTime; got < tt*0.99 || got > tt*1.01 {
		t.Errorf("BIST time %g vs march model %g", got, tt)
	}
}

// equivalence runs both engines on identically faulted memories and
// compares the reports.
func equivalence(t *testing.T, tst march.Test, build func() *sram.SRAM) {
	t.Helper()
	rep, err := march.Run(tst, build())
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(compileMust(t, tst), build()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMiscompares != res.Total {
		t.Fatalf("%s: march found %d miscompares, BIST %d", tst.Name, rep.TotalMiscompares, res.Total)
	}
	for i := range rep.Failures {
		if i >= len(res.Failures) {
			break
		}
		if rep.Failures[i] != res.Failures[i] {
			t.Errorf("%s failure %d differs:\n march %v\n bist  %v", tst.Name, i, rep.Failures[i], res.Failures[i])
		}
	}
}

func TestEquivalenceWithMarchEngine(t *testing.T) {
	// The BIST must be bit-equivalent to the reference software engine
	// across the fault library and all algorithms.
	scenarios := []func() *sram.SRAM{
		func() *sram.SRAM {
			s := sram.New()
			fault.NewInjector(fault.Fault{Kind: fault.SAF0, Victim: fault.Cell{Addr: 99, Bit: 3}}).Attach(s)
			return s
		},
		func() *sram.SRAM {
			s := sram.New()
			fault.NewInjector(fault.Fault{Kind: fault.TFDown, Victim: fault.Cell{Addr: 4000, Bit: 63}}).Attach(s)
			return s
		},
		func() *sram.SRAM {
			s := sram.New()
			fault.NewInjector(fault.Fault{
				Kind: fault.CFid, Aggressor: fault.Cell{Addr: 10, Bit: 0},
				Victim: fault.Cell{Addr: 60, Bit: 0}, Val: true,
			}).Attach(s)
			return s
		},
		func() *sram.SRAM {
			s := sram.New()
			fault.NewInjector(fault.Fault{Kind: fault.PGF, Victim: fault.Cell{Addr: 1, Bit: 1}, Val: false}).Attach(s)
			return s
		},
		func() *sram.SRAM {
			cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
			s := sram.New()
			s.SetRetention(sram.NewThresholdRetention(cond, 0.5))
			s.RegisterVariation(123, 45, process.WorstCase1())
			return s
		},
	}
	for _, tst := range march.Library() {
		for _, build := range scenarios {
			equivalence(t, tst, build)
		}
	}
}

func TestBISTDetectsDRFDS(t *testing.T) {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.5))
	s.RegisterVariation(50, 9, process.WorstCase1())
	res, err := New(compileMust(t, march.MarchMLZ()), s).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("BIST March m-LZ must detect DRF_DS")
	}
	if res.Failures[0].Addr != 50 {
		t.Errorf("first failure at %d, want 50", res.Failures[0].Addr)
	}
}

func TestBackgroundRegister(t *testing.T) {
	// With a background loaded, a clean run still passes and the memory
	// ends holding the background pattern.
	s := sram.New()
	c := New(compileMust(t, march.MarchCMinus()), s)
	c.SetBackground(0xAAAAAAAAAAAAAAAA)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Fatalf("clean background run failed: %v", res.Failures)
	}
	// March C- ends with w0 (background) in its last writing element.
	if got := s.RawWord(0); got != 0xAAAAAAAAAAAAAAAA {
		t.Errorf("final word %x", got)
	}
}

func TestFailCaptureBounded(t *testing.T) {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.01)) // whole-array wipe
	res, err := New(compileMust(t, march.MarchMLZ()), s).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) > FailCapacity {
		t.Errorf("captured %d failures, capacity %d", len(res.Failures), FailCapacity)
	}
	if res.Total <= FailCapacity {
		t.Errorf("total %d should exceed capacity on a wipe", res.Total)
	}
	if log := res.FailLog(); !log.Overflowed() {
		t.Error("bounded capture of a wipe must report overflow")
	}
}

func TestFailCaptureFull(t *testing.T) {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.01)) // whole-array wipe
	c := New(compileMust(t, march.MarchMLZ()), s)
	c.SetFailCapacity(-1)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := res.FailLog()
	if log.Overflowed() {
		t.Errorf("full capture dropped records below the limit: %d of %d", len(log.Entries), log.Total)
	}
	if len(log.Entries) != res.Total || res.Total <= FailCapacity {
		t.Errorf("recorded %d of %d miscompares", len(log.Entries), res.Total)
	}
	// The full-signature mode is bounded at march.CaptureLimit, never
	// unbounded — array-scale fault maps must not grow the log without
	// limit.
	if log.Capacity != march.CaptureLimit {
		t.Errorf("capacity %d, want march.CaptureLimit %d", log.Capacity, march.CaptureLimit)
	}
	// Controller-side export matches the result.
	if cl := c.FailLog(); len(cl.Entries) != len(log.Entries) || cl.Total != log.Total {
		t.Errorf("controller log %d/%d, result log %d/%d",
			len(cl.Entries), cl.Total, len(log.Entries), log.Total)
	}
}

// TestFailHookSeesEveryMiscompare pins the streaming observer contract:
// with a tiny capture depth, the hook still sees every miscompare while
// the recorded log stays bounded.
func TestFailHookSeesEveryMiscompare(t *testing.T) {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	s := sram.New()
	s.SetRetention(sram.NewThresholdRetention(cond, 0.01))
	c := New(compileMust(t, march.MarchMLZ()), s)
	c.SetFailCapacity(8)
	var seen int
	c.SetFailHook(func(march.Failure) { seen++ })
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.Total {
		t.Errorf("hook saw %d of %d miscompares", seen, res.Total)
	}
	if len(res.Failures) != 8 {
		t.Errorf("recorded %d failures, want the capture depth 8", len(res.Failures))
	}
}

func TestSetFailCapacityDefaults(t *testing.T) {
	c := New(compileMust(t, march.MATSPlus()), sram.New())
	c.SetFailCapacity(7)
	if c.FailLog().Capacity != 7 {
		t.Errorf("capacity %d, want 7", c.FailLog().Capacity)
	}
	c.SetFailCapacity(0)
	if c.FailLog().Capacity != FailCapacity {
		t.Errorf("capacity %d, want default %d", c.FailLog().Capacity, FailCapacity)
	}
}

func TestStepGranularity(t *testing.T) {
	p := compileMust(t, march.MATSPlus())
	c := New(p, sram.New())
	if c.State() != Idle {
		t.Error("controller should start idle")
	}
	done := c.Step()
	if done || c.State() != Running {
		t.Errorf("after one step: done=%v state=%s", done, c.State())
	}
	if c.Cycles() != 1 {
		t.Errorf("cycles %d after one step", c.Cycles())
	}
	for !c.Step() {
	}
	if c.State() != Done {
		t.Errorf("final state %s", c.State())
	}
	// Stepping a finished controller is a no-op returning done.
	if !c.Step() {
		t.Error("Step on done controller must return true")
	}
}

func TestAbortOnIllegalSequence(t *testing.T) {
	// A hand-built program that reads while asleep must abort cleanly.
	p := &Program{
		Name:        "bad",
		DwellCycles: 4,
		Instrs: []Instr{
			{Op: OpSleepDS},
			{Op: OpRead0, PerAddress: true, EndElement: true},
		},
	}
	c := New(p, sram.New())
	_, err := c.Run()
	if err == nil {
		t.Fatal("expected abort")
	}
	if c.State() != Errored {
		t.Errorf("state %s", c.State())
	}
	if c.Err() == nil {
		t.Error("Err() should report the abort cause")
	}
}
