// Package sramtest is a test-solution toolkit for data retention faults in
// low-power SRAMs, reproducing Zordan et al., "Test Solution for Data
// Retention Faults in Low-Power SRAMs" (DATE 2013, DOI
// 10.7873/DATE.2013.099) as a self-contained Go library.
//
// The library spans the paper's whole methodology:
//
//   - an analog circuit simulator (internal/spice) with EKV MOSFET models
//     (internal/device) under PVT and local-variation control
//     (internal/process);
//   - 6T core-cell stability analysis — butterfly/SNM, retention voltages
//     DRV_DS0/DRV_DS1, flip dynamics (internal/cell);
//   - the embedded voltage regulator with the paper's 32 resistive-open
//     defect injection sites (internal/regulator) and its leakage load
//     (internal/power);
//   - defect characterization: minimal DRF-causing resistance per defect,
//     case study and PVT condition — Table II (internal/charac);
//   - a behavioral 4K×64 low-power SRAM with power modes and fault
//     injection (internal/sram, internal/fault);
//   - March tests incl. the paper's March m-LZ and its baselines
//     (internal/march);
//   - the optimized 3-iteration production test flow — Table III
//     (internal/testflow);
//   - ready-made experiment drivers regenerating every table and figure
//     (internal/exp), used by the cmd/ tools and the benchmarks.
//
// This facade re-exports the stable entry points; see the examples/
// directory for end-to-end usage.
package sramtest

import (
	"context"

	"sramtest/internal/bist"
	"sramtest/internal/cell"
	"sramtest/internal/charac"
	"sramtest/internal/diag"
	"sramtest/internal/engine"
	_ "sramtest/internal/engine/spicebe"   // default backend
	_ "sramtest/internal/engine/surrogate" // EngineNames: "surrogate"
	_ "sramtest/internal/engine/tiered"    // EngineNames: "tiered"
	"sramtest/internal/faultmap"
	"sramtest/internal/march"
	"sramtest/internal/power"
	"sramtest/internal/process"
	"sramtest/internal/psw"
	"sramtest/internal/regulator"
	"sramtest/internal/sram"
	"sramtest/internal/testflow"
	"sramtest/internal/yield"
)

// Core PVT and variation types.
type (
	// Condition is one PVT point (corner, supply, temperature).
	Condition = process.Condition
	// Corner is a global process corner (TT/SS/FF/FS/SF).
	Corner = process.Corner
	// Variation is a per-transistor local ΔVth assignment of a 6T cell,
	// in sigma multiples with the paper's signed convention.
	Variation = process.Variation
	// CaseStudy is one of Table I's variation scenarios.
	CaseStudy = process.CaseStudy
	// CellTransistor names one of the six core-cell transistors.
	CellTransistor = process.CellTransistor
)

// Process corners.
const (
	TT = process.TT
	SS = process.SS
	FF = process.FF
	FS = process.FS
	SF = process.SF
)

// Cell transistors (paper Fig. 3).
const (
	MPcc1 = process.MPcc1
	MNcc1 = process.MNcc1
	MPcc2 = process.MPcc2
	MNcc2 = process.MNcc2
	MNcc3 = process.MNcc3
	MNcc4 = process.MNcc4
)

// PVTGrid returns the paper's full 45-point PVT grid.
func PVTGrid() []Condition { return process.Grid() }

// Nominal returns the typical-corner nominal condition (1.1 V, 25 °C).
func Nominal() Condition { return process.Nominal() }

// Table1CaseStudies returns the paper's ten Table I scenarios.
func Table1CaseStudies() []CaseStudy { return process.Table1CaseStudies() }

// WorstCaseVariation returns the theoretical worst case for retention of
// a stored '1' (all six transistors at 6σ, paper §III.B).
func WorstCaseVariation() Variation { return process.WorstCase1() }

// Cell-level stability analysis.
type (
	// Cell is a 6T core-cell model at one PVT condition.
	Cell = cell.Cell
	// DRVResult is a worst-case-over-PVT retention voltage measurement.
	DRVResult = cell.DRVResult
)

// NewCell builds a core-cell with the given variation at a condition.
func NewCell(v Variation, cond Condition) *Cell { return cell.New(v, cond) }

// WorstDRV returns the retention voltages of a variation scenario
// maximized over the retention-relevant PVT grid (Table I methodology).
func WorstDRV(v Variation) DRVResult {
	return cell.WorstDRV(v, cell.DRVConditions())
}

// Regulator and defects.
type (
	// Defect identifies one of the 32 resistive-open injection sites.
	Defect = regulator.Defect
	// DefectInfo describes a site (branch, category, description).
	DefectInfo = regulator.Info
	// VrefLevel selects one of the regulator's four reference taps.
	VrefLevel = regulator.VrefLevel
	// Regulator is the voltage-regulator circuit model.
	Regulator = regulator.Regulator
)

// DefectCategory is the §IV.B impact classification of a defect.
type DefectCategory = regulator.Category

// Defect categories.
const (
	CategoryNegligible = regulator.Negligible
	CategoryPower      = regulator.Power
	CategoryDRF        = regulator.DRF
	CategoryBoth       = regulator.Both
)

// NewRegulator builds the embedded voltage regulator at a PVT condition,
// loaded with the core-cell array's leakage and configured with the
// paper's per-VDD reference selection. Inject defects with InjectDefect
// and solve with SolveDS/DSEntry.
func NewRegulator(cond Condition) *Regulator {
	pm := power.NewModel(cond)
	r := regulator.Build(cond, pm.LoadFunc(), regulator.DefaultParams())
	r.SetVref(regulator.SelectFor(cond.VDD))
	return r
}

// AllDefects returns Df1..Df32.
func AllDefects() []Defect { return regulator.All() }

// DRFDefects returns the 17 defects that can cause retention faults
// (Table II's rows).
func DRFDefects() []Defect { return regulator.DRFCandidates() }

// DefectOf returns the description of a defect site.
func DefectOf(d Defect) DefectInfo { return regulator.Lookup(d) }

// Characterization (Table II).
type (
	// CharacOptions tunes a characterization run.
	CharacOptions = charac.Options
	// CharacResult is one Table II cell.
	CharacResult = charac.Result
)

// DefaultCharacOptions mirrors the paper's setup (full PVT grid, 1 ms
// dwell).
func DefaultCharacOptions() CharacOptions { return charac.DefaultOptions() }

// CharacterizeDefect finds the minimal DRF-causing resistance of a defect
// for a case study over the options' PVT sweep.
func CharacterizeDefect(d Defect, cs CaseStudy, opt CharacOptions) (CharacResult, error) {
	return charac.CharacterizeDefect(d, cs, opt)
}

// Simulation engines (DESIGN.md §5.9). Every sweep option struct carries
// an optional SimEngine; nil selects the process default (exact SPICE,
// or whatever ResolveEngine + SetDefaultEngine installed).
type (
	// SimEngine is a pluggable simulation backend: "spice" (exact),
	// "tiered" (surrogate screen + SPICE confirm, byte-identical
	// results) or "surrogate" (approximate, exploratory only).
	SimEngine = engine.Engine
	// EngineStats are the tiered backend's deterministic
	// screen/escalation/calibration counters.
	EngineStats = engine.EngineStats
)

// EngineNames lists the registered backends ("spice", "surrogate",
// "tiered").
func EngineNames() []string { return engine.Names() }

// ResolveEngine looks a backend up by registry or versioned name; the
// empty name resolves to the exact "spice" backend.
func ResolveEngine(name string) (SimEngine, error) { return engine.Resolve(name) }

// SetDefaultEngine installs the process-wide default backend used when
// an option struct's Engine field is nil.
func SetDefaultEngine(e SimEngine) { engine.SetDefault(e) }

// EngineStatsNow snapshots the engine counters.
func EngineStatsNow() EngineStats { return engine.Stats() }

// Behavioral SRAM.
type (
	// SRAM is the behavioral 4K×64 low-power memory.
	SRAM = sram.SRAM
	// RetentionModel decides deep-sleep cell survival.
	RetentionModel = sram.RetentionModel
)

// NewSRAM returns a fault-free SRAM in ACT mode.
func NewSRAM() *SRAM { return sram.New() }

// NewElectricalRetention builds a retention model backed by the full
// electrical chain (regulator + cell analysis) with an injected defect;
// use resistance 0 for a fault-free regulator.
func NewElectricalRetention(cond Condition, d Defect, resistance float64) (RetentionModel, error) {
	return sram.NewElectricalRetention(cond, d, resistance)
}

// NewThresholdRetention builds the lightweight analytic retention model
// (fixed rail voltage, static DRV criterion).
func NewThresholdRetention(cond Condition, vreg float64) RetentionModel {
	return sram.NewThresholdRetention(cond, vreg)
}

// March testing.
type (
	// MarchTest is a March algorithm.
	MarchTest = march.Test
	// MarchReport is the outcome of one March run.
	MarchReport = march.Report
)

// MarchMLZ returns the paper's March m-LZ (5N+4).
func MarchMLZ() MarchTest { return march.MarchMLZ() }

// MarchLZ returns the predecessor March LZ (light-sleep based).
func MarchLZ() MarchTest { return march.MarchLZ() }

// MarchLibrary returns all implemented March algorithms, baselines first.
func MarchLibrary() []MarchTest { return march.Library() }

// RunMarch executes a March test against a memory (typically *SRAM).
func RunMarch(t MarchTest, m march.Memory) (MarchReport, error) {
	return march.Run(t, m)
}

// ParseMarchTest parses a March algorithm from van-de-Goor notation, e.g.
// "{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}" (ASCII aliases
// up/dn/ud accepted for the arrows).
func ParseMarchTest(name, src string) (MarchTest, error) {
	return march.ParseTest(name, src)
}

// BIST engine (the on-chip embodiment of the test solution).
type (
	// BISTProgram is compiled March microcode.
	BISTProgram = bist.Program
	// BISTController is the cycle-accurate engine.
	BISTController = bist.Controller
	// BISTResult is a completed BIST run.
	BISTResult = bist.Result
)

// CompileBIST compiles a March test for the BIST engine at the SRAM's
// access cycle time.
func CompileBIST(t MarchTest) (*BISTProgram, error) {
	return bist.Compile(t, sram.CycleTime)
}

// NewBIST builds a controller over a compiled program and a memory.
func NewBIST(p *BISTProgram, m march.Memory) *BISTController {
	return bist.New(p, m)
}

// PowerSwitchNetwork models the SRAM's segmented power-switch network and
// its control-chain defects (the March LZ fault class).
type PowerSwitchNetwork = psw.Network

// NewPowerSwitchNetwork returns an intact 16-segment network.
func NewPowerSwitchNetwork() *PowerSwitchNetwork { return psw.New() }

// Flow optimization (Table III).
type (
	// Flow is an optimized production test flow.
	Flow = testflow.Flow
	// FlowMeasureOptions configures the sensitivity measurement.
	FlowMeasureOptions = testflow.MeasureOptions
)

// DefaultFlowMeasureOptions mirrors the paper's setup.
func DefaultFlowMeasureOptions() FlowMeasureOptions { return testflow.DefaultMeasureOptions() }

// OptimizeFlow measures per-condition defect sensitivities and derives
// the minimal iteration set covering every detectable defect, with the
// paper's constraints (fault-free rail above worstDRV, one iteration per
// supply voltage).
func OptimizeFlow(opt FlowMeasureOptions, worstDRV float64) (Flow, error) {
	sens, err := testflow.Measure(opt)
	if err != nil {
		return Flow{}, err
	}
	return testflow.Optimize(sens, testflow.DefaultOptimizeOptions(worstDRV)), nil
}

// Rare-event yield estimation (DESIGN.md §5.11): P(DRV_DS > Vref) at
// 5-6σ tail depths via mean-shifted importance sampling or statistical
// blockade, orders of magnitude cheaper than naive Monte-Carlo at
// matched confidence.
type (
	// YieldEstimator is a rare-event tail estimator ("is" or "blockade").
	YieldEstimator = yield.Estimator
	// YieldParams configures one estimate (condition, Vref, samples, seed).
	YieldParams = yield.Params
	// YieldResult is a completed estimate with its 95% CI and solve economy.
	YieldResult = yield.Result
	// YieldPartial is one shard's mergeable contribution to an estimate.
	YieldPartial = yield.Partial
	// YieldStats are the cumulative yield counters the daemon exports.
	YieldStats = yield.YieldStats
)

// NewYieldEstimator resolves an estimator by method name; the empty
// name selects mean-shifted importance sampling.
func NewYieldEstimator(method string) (YieldEstimator, error) { return yield.New(method) }

// YieldMethods lists the registered estimator names.
func YieldMethods() []string { return yield.Methods() }

// MergeYieldPartials reassembles shard partials into the estimate a
// single-shard run of the same parameters would produce, byte for byte.
func MergeYieldPartials(parts []YieldPartial) (YieldResult, error) {
	return yield.MergePartials(parts)
}

// YieldStatsNow snapshots the cumulative yield counters.
func YieldStatsNow() YieldStats { return yield.Stats() }

// Array-scale correlated fault maps and March coverage evaluation
// (DESIGN.md §5.12): whole-array fault populations with DRV-calibrated
// retention-fault marginals and streak/cluster spatial correlation,
// scored against the March library — the statistical complement of the
// one-fault-at-a-time diagnosis flows.
type (
	// FaultMap is one sampled whole-array fault population.
	FaultMap = faultmap.Map
	// FaultMapParams configures a corpus and its coverage evaluation.
	FaultMapParams = faultmap.Params
	// FaultMapGenerator deterministically regenerates any map of a corpus.
	FaultMapGenerator = faultmap.Generator
	// FaultMapResult is a completed corpus coverage evaluation.
	FaultMapResult = faultmap.Result
	// FaultMapPartial is one shard's mergeable contribution.
	FaultMapPartial = faultmap.Partial
	// FaultMapStats are the cumulative faultmap counters the daemon exports.
	FaultMapStats = faultmap.FaultMapStats
)

// NewFaultMapGenerator calibrates the DRF marginal from the cell-level
// DRV distribution and returns the corpus generator.
func NewFaultMapGenerator(p FaultMapParams) (*FaultMapGenerator, error) {
	return faultmap.NewGenerator(p)
}

// EstimateFaultMapCoverage generates the corpus and evaluates every
// configured test against it; the result is byte-identical at any
// worker count.
func EstimateFaultMapCoverage(ctx context.Context, p FaultMapParams) (FaultMapResult, error) {
	return faultmap.Estimate(ctx, p)
}

// MergeFaultMapPartials reassembles shard partials into the result a
// single-shard run of the same parameters would produce, byte for byte.
func MergeFaultMapPartials(parts []FaultMapPartial) (FaultMapResult, error) {
	return faultmap.MergePartials(parts)
}

// FaultMapStatsNow snapshots the cumulative faultmap counters.
func FaultMapStatsNow() FaultMapStats { return faultmap.Stats() }

// Fault-dictionary defect diagnosis: from the failure signature the
// optimized flow observes on a failing device back to the causing
// regulator defect.
type (
	// FaultDictionary maps candidate (defect, resistance, case study)
	// hypotheses to their March m-LZ failure signatures; its Match and
	// Refine methods perform the diagnosis.
	FaultDictionary = diag.Dictionary
	// DiagCandidate is one diagnosable hypothesis.
	DiagCandidate = diag.Candidate
	// DiagOptions configures dictionary construction and observation.
	DiagOptions = diag.Options
	// DiagSignature is an observed multi-condition failure signature.
	DiagSignature = diag.Signature
	// DiagObserver supplies device signatures at extra test conditions
	// during adaptive refinement.
	DiagObserver = diag.Observer
)

// DefaultDiagOptions mirrors the paper's production-test setup (fs
// corner, 125 °C, 1 ms dwell, the optimized three-condition flow).
func DefaultDiagOptions() DiagOptions { return diag.DefaultOptions() }

// BuildFaultDictionary simulates every candidate at every flow (and
// refinement) condition; the result is identical at any worker count.
func BuildFaultDictionary(opt DiagOptions) (*FaultDictionary, error) { return diag.Build(opt) }

// LoadFaultDictionary reads a dictionary artifact written by
// (*FaultDictionary).Save or `diagnose build`.
func LoadFaultDictionary(path string) (*FaultDictionary, error) { return diag.Load(path) }

// ObserveDiagSignature simulates the optimized flow on a device carrying
// the candidate defect — the signature a failing part presents to
// (*FaultDictionary).Match.
func ObserveDiagSignature(opt DiagOptions, cand DiagCandidate) (DiagSignature, error) {
	return diag.BuildSignature(opt, cand)
}
