#!/bin/sh
# faultmap-smoke.sh — end-to-end smoke test of the correlated fault-map
# path, as run by CI and `make faultmap-smoke`: build the faultmap CLI
# and sramd, evaluate a 1000-map corpus locally at three worker counts
# (must be byte-identical), regenerate a corpus dump twice (must be
# byte-identical), fan the same evaluation out as shard jobs through a
# daemon's POST /v1/batch (cmd/faultmap -cluster; merged output must be
# byte-identical to the local run), submit it once more as a whole
# daemon job (same bytes again), and check the faultmap counters
# surface on /metrics. Writes the report to results/faultmap-smoke.txt.
#
# FAULTMAP_MAPS overrides the corpus size (default 1000 — the
# determinism contract is the point, so the corpus is kept at real
# scale; the deep EXP-FM sweep lives in results/faultmap*.txt).
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon log.
set -eu

ADDR="${SRAMD_ADDR:-127.0.0.1:8359}"
BASE="http://$ADDR"
MAPS="${FAULTMAP_MAPS:-1000}"
TMP="$(mktemp -d)"
LOG="$TMP/sramd.log"
PID=""

fail() {
	echo "faultmap-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "faultmap-smoke: building faultmap and sramd"
go build -o "$TMP/faultmap" ./cmd/faultmap
go build -o "$TMP/sramd" ./cmd/sramd

run() { # run WORKERS OUT
	"$TMP/faultmap" -maps "$MAPS" -tests 'March m-LZ,March C-' -workers "$1" >"$2"
}

echo "faultmap-smoke: $MAPS-map corpus at workers=1, 4 and 8"
run 1 "$TMP/w1.txt" || fail "local run (workers=1) failed"
run 4 "$TMP/w4.txt" || fail "local run (workers=4) failed"
run 8 "$TMP/w8.txt" || fail "local run (workers=8) failed"
cmp -s "$TMP/w1.txt" "$TMP/w4.txt" || fail "workers=4 changed the corpus bytes"
cmp -s "$TMP/w1.txt" "$TMP/w8.txt" || fail "workers=8 changed the corpus bytes"
grep -q "EXP-FM" "$TMP/w1.txt" || fail "not a faultmap report: $(cat "$TMP/w1.txt")"
grep -q "corpus digest" "$TMP/w1.txt" || fail "no corpus digest in the report"
grep -q "March m-LZ" "$TMP/w1.txt" || fail "no March m-LZ row in the report"

echo "faultmap-smoke: corpus dump regenerates byte-identically"
"$TMP/faultmap" -maps 64 -dump >"$TMP/dump1.ndjson" || fail "corpus dump failed"
"$TMP/faultmap" -maps 64 -dump -workers 4 >"$TMP/dump2.ndjson" || fail "second corpus dump failed"
cmp -s "$TMP/dump1.ndjson" "$TMP/dump2.ndjson" || fail "regenerated corpus dump differs"
[ "$(wc -l <"$TMP/dump1.ndjson")" -eq 64 ] || fail "dump holds $(wc -l <"$TMP/dump1.ndjson") maps, want 64"

echo "faultmap-smoke: starting sramd on $ADDR"
"$TMP/sramd" -addr "$ADDR" -store-dir "$TMP/store" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "daemon never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "daemon exited early"
	sleep 0.2
done

echo "faultmap-smoke: sharded cluster evaluation through POST /v1/batch"
"$TMP/faultmap" -maps "$MAPS" -tests 'March m-LZ,March C-' \
	-cluster "$BASE" -shards 2 >"$TMP/cluster.txt" || fail "cluster run failed"
cmp -s "$TMP/w1.txt" "$TMP/cluster.txt" || fail "cluster shards changed the corpus bytes"

echo "faultmap-smoke: whole faultmap job through POST /v1/jobs"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" \
	-d "{\"kind\":\"faultmap\",\"faultmap\":{\"maps\":$MAPS,\"tests\":[\"March m-LZ\",\"March C-\"]}}")
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
i=0
while :; do
	STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
	STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$STATE" in
	done) break ;;
	failed | canceled) fail "job ended in state $STATE: $STATUS" ;;
	esac
	i=$((i + 1))
	[ "$i" -lt 600 ] || fail "job did not finish in time: $STATUS"
	sleep 0.5
done
curl -fsS "$BASE/v1/jobs/$ID/result" >"$TMP/daemon.txt"
cmp -s "$TMP/w1.txt" "$TMP/daemon.txt" || fail "daemon job bytes differ from the local CLI run"

echo "faultmap-smoke: checking faultmap counters on /metrics"
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^sramd_faultmap_runs_total 1$' || fail "whole evaluation not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_faultmap_partials_total 2$' || fail "shard partials not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_faultmap_maps_total [1-9]' || fail "no maps counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_faultmap_last_best_coverage 0\.[0-9]' || fail "no best-coverage gauge in /metrics"

echo "faultmap-smoke: shutting down"
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on SIGTERM"
PID=""

mkdir -p results
cp "$TMP/w1.txt" results/faultmap-smoke.txt
echo "faultmap-smoke: PASS (results/faultmap-smoke.txt)"
