#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the sramd daemon, as run by
# CI and `make serve-smoke`: build the daemon, start it, submit a tiny
# Table II job, poll it to completion, check the result, /healthz and
# /metrics, and shut the daemon down cleanly.
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon log.
set -eu

ADDR="${SRAMD_ADDR:-127.0.0.1:8347}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
LOG="$TMP/sramd.log"
PID=""

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building sramd"
go build -o "$TMP/sramd" ./cmd/sramd

echo "serve-smoke: starting sramd on $ADDR"
"$TMP/sramd" -addr "$ADDR" -store-dir "$TMP/store" >"$LOG" 2>&1 &
PID=$!

# Wait for /healthz to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "daemon never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "daemon exited early"
	sleep 0.2
done
[ "$(curl -fsS "$BASE/healthz")" = "ok" ] || fail "unexpected /healthz body"

echo "serve-smoke: submitting a tiny Table II job"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" \
	-d '{"kind":"charac","charac":{"defects":[16],"caseStudies":[1]}}')
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
echo "serve-smoke: job $ID accepted"

# Poll to a terminal state (the tiny job takes a few seconds).
i=0
while :; do
	STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
	STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$STATE" in
	done) break ;;
	failed | canceled) fail "job ended in state $STATE: $STATUS" ;;
	esac
	i=$((i + 1))
	[ "$i" -lt 300 ] || fail "job did not finish in time: $STATUS"
	sleep 0.5
done
echo "serve-smoke: job done ($STATUS)"

RESULT=$(curl -fsS "$BASE/v1/jobs/$ID/result")
printf '%s' "$RESULT" | grep -q "Table II" || fail "result is not a Table II report: $RESULT"

# An identical re-submission must be a cache hit (HTTP 200, cached:true).
CODE=$(curl -s -o "$TMP/resubmit.json" -w '%{http_code}' -X POST "$BASE/v1/jobs" \
	-d '{"kind":"charac","charac":{"defects":[16],"caseStudies":[1]}}')
[ "$CODE" = "200" ] || fail "re-submission returned HTTP $CODE, want 200 (cache hit)"
grep -q '"cached":true' "$TMP/resubmit.json" || fail "re-submission not cached: $(cat "$TMP/resubmit.json")"

METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^sramd_jobs{state="done"} ' || fail "no done-jobs gauge in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_cache_hits_total 1$' || fail "cache hit not visible in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_job_duration_seconds_count ' || fail "no latency histogram in /metrics"

echo "serve-smoke: shutting down"
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on SIGTERM"
PID=""

echo "serve-smoke: PASS"
