#!/bin/sh
# diag-index-smoke.sh — end-to-end smoke test of the fleet-scale
# diagnosis path, as run by CI and `make diag-index-smoke`: build a
# fine-grid dictionary of >= 10^5 entries (diagnose build
# -points-per-decade), gate the inverted index byte-identical against
# the linear matcher at >= 20x throughput (diagnose verify), then serve
# the artifact from sramd -diag-dict and stream NDJSON signatures at it
# directly and through a two-node coordinator, checking the
# sramd_diag_* and cluster fan-out metrics.
#
# DIAG_SMOKE_PPD / DIAG_SMOKE_MIN_ENTRIES shrink the build for quick
# local runs (the defaults are the CI gate: 360 points per decade,
# ~111k entries, a few minutes of build time).
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon logs.
set -eu

PORT_BASE="${SRAMD_PORT_BASE:-8370}"
PPD="${DIAG_SMOKE_PPD:-360}"
MIN_ENTRIES="${DIAG_SMOKE_MIN_ENTRIES:-100000}"
TMP="$(mktemp -d)"
DICT="$TMP/dict-fine.json"
PIDS=""

fail() {
	echo "diag-index-smoke: FAIL: $*" >&2
	for log in "$TMP"/*.log; do
		[ -f "$log" ] || continue
		echo "--- $log ---" >&2
		cat "$log" >&2 || true
	done
	exit 1
}

cleanup() {
	for pid in $PIDS; do
		kill -TERM "$pid" 2>/dev/null || true
	done
	for pid in $PIDS; do
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() { # $1 = base URL, $2 = name
	i=0
	until curl -fsS "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -lt 300 ] || fail "$2 never became healthy"
		sleep 0.2
	done
}

echo "diag-index-smoke: building diagnose, sramd and loadgen"
go build -o "$TMP/diagnose" ./cmd/diagnose
go build -o "$TMP/sramd" ./cmd/sramd
go build -o "$TMP/loadgen" ./cmd/loadgen

echo "diag-index-smoke: building the fine-grid dictionary ($PPD points/decade; this takes a few minutes)"
"$TMP/diagnose" build -base-only -points-per-decade "$PPD" -o "$DICT"
[ -s "$DICT" ] || fail "dictionary artifact missing"

echo "diag-index-smoke: verifying index byte-identity and >= 20x throughput"
"$TMP/diagnose" verify -dict "$DICT" -queries 160 -min-speedup 20 | tee "$TMP/verify.txt"
ENTRIES=$(awk '/^  dictionary/ {print $2; exit}' "$TMP/verify.txt")
[ -n "$ENTRIES" ] || fail "no entry count in verify output"
[ "$ENTRIES" -ge "$MIN_ENTRIES" ] || fail "dictionary holds $ENTRIES entries, want >= $MIN_ENTRIES"
grep -q 'byte-identical' "$TMP/verify.txt" || fail "verify reported no equivalence line"

echo "diag-index-smoke: serving the dictionary from a single node"
NODE1="http://127.0.0.1:$((PORT_BASE + 1))"
"$TMP/sramd" -addr "127.0.0.1:$((PORT_BASE + 1))" -diag-dict "$DICT" >"$TMP/node1.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$NODE1" "node 1"
curl -fsS "$NODE1/v1/diagnose" | grep -q '"indexed":true' || fail "diagnose info does not report an index"

echo "diag-index-smoke: streaming JSON and binary-codec signatures"
"$TMP/diagnose" stream -url "$NODE1" -dict "$DICT" -n 120 || fail "JSON stream errored"
"$TMP/diagnose" stream -url "$NODE1" -dict "$DICT" -n 120 -bin || fail "binary stream errored"

echo "diag-index-smoke: loadgen diag mode (signatures/minute)"
"$TMP/loadgen" -target "$NODE1" -mode diag -diag-dict "$DICT" -n 120 || fail "loadgen diag run errored"

echo "diag-index-smoke: checking node metrics"
curl -fsS "$NODE1/metrics" >"$TMP/metrics.txt"
grep -q '^sramd_diag_stream_requests_total 3' "$TMP/metrics.txt" || fail "stream request counter wrong"
grep -q '^sramd_diag_stream_signatures_total 360' "$TMP/metrics.txt" || fail "stream signature counter wrong"
grep -q '^sramd_diag_stream_errors_total 0' "$TMP/metrics.txt" || fail "stream errors counted on a clean run"
grep -q '^sramd_diag_fallbacks_total 0' "$TMP/metrics.txt" || fail "indexable stream hit the linear fallback"

echo "diag-index-smoke: booting a second node + coordinator fan-out"
NODE2="http://127.0.0.1:$((PORT_BASE + 2))"
"$TMP/sramd" -addr "127.0.0.1:$((PORT_BASE + 2))" -diag-dict "$DICT" >"$TMP/node2.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$NODE2" "node 2"
COORD="http://127.0.0.1:$((PORT_BASE + 3))"
"$TMP/sramd" -addr "127.0.0.1:$((PORT_BASE + 3))" -coordinator -nodes "$NODE1,$NODE2" >"$TMP/coord.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$COORD" "coordinator"

curl -fsS "$COORD/v1/diagnose" | grep -q '"indexed":true' || fail "coordinator does not proxy diagnose info"
"$TMP/diagnose" stream -url "$COORD" -dict "$DICT" -n 120 || fail "coordinator stream errored"
curl -fsS "$COORD/metrics" >"$TMP/coord-metrics.txt"
grep -q '^sramd_cluster_diag_batches_total 1' "$TMP/coord-metrics.txt" || fail "cluster batch counter wrong"
grep -q '^sramd_cluster_diag_lines_total 120' "$TMP/coord-metrics.txt" || fail "cluster line counter wrong"
grep -q '^sramd_cluster_diag_errors_total 0' "$TMP/coord-metrics.txt" || fail "cluster errors counted on a clean run"

echo "diag-index-smoke: PASS"
