#!/bin/sh
# cluster-smoke.sh — end-to-end smoke test of clustered sramd, as run by
# CI and `make cluster-smoke`: build sramd and batchdiff, run a small
# real-job NDJSON batch through a single node, then boot a 3-node
# cluster with a coordinator, run the identical batch through it, and
# diff the two outputs for byte identity. Also checks the coordinator's
# topology and metrics endpoints and that a resubmitted batch is served
# entirely from the replica store.
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon logs.
set -eu

PORT_BASE="${SRAMD_PORT_BASE:-8360}"
TMP="$(mktemp -d)"
PIDS=""

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	for log in "$TMP"/*.log; do
		echo "--- $log ---" >&2
		cat "$log" >&2 || true
	done
	exit 1
}

cleanup() {
	for pid in $PIDS; do
		kill -TERM "$pid" 2>/dev/null || true
	done
	for pid in $PIDS; do
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() { # $1 = base URL, $2 = name
	i=0
	until curl -fsS "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -lt 50 ] || fail "$2 never became healthy"
		sleep 0.2
	done
}

echo "cluster-smoke: building sramd and batchdiff"
go build -o "$TMP/sramd" ./cmd/sramd
go build -o "$TMP/batchdiff" ./cmd/batchdiff

# A small batch of REAL jobs (not the -sim-job fixture): byte identity
# between cluster and single node must hold for actual characterization
# bytes. Tiny specs keep the run to a few seconds.
cat >"$TMP/batch.ndjson" <<'EOF'
{"kind":"charac","charac":{"defects":[16],"caseStudies":[1]}}
{"kind":"charac","charac":{"defects":[16],"caseStudies":[2]}}
{"kind":"charac","charac":{"defects":[17],"caseStudies":[1]}}
{"kind":"exp","exp":{"samples":8}}
{"kind":"exp","exp":{"samples":8,"seed":7}}
{"kind":"exp","exp":{"samples":16,"seed":3}}
EOF

echo "cluster-smoke: single-node reference run"
"$TMP/sramd" -addr "127.0.0.1:$PORT_BASE" -jobs 2 >"$TMP/single.log" 2>&1 &
PIDS="$PIDS $!"
SINGLE="http://127.0.0.1:$PORT_BASE"
wait_healthy "$SINGLE" "single node"
curl -fsS --data-binary @"$TMP/batch.ndjson" "$SINGLE/v1/batch" >"$TMP/single.ndjson" ||
	fail "single-node batch request failed"

echo "cluster-smoke: booting 3 nodes + coordinator"
NODES=""
for i in 1 2 3; do
	PORT=$((PORT_BASE + i))
	"$TMP/sramd" -addr "127.0.0.1:$PORT" -jobs 2 >"$TMP/node$i.log" 2>&1 &
	PIDS="$PIDS $!"
	NODES="$NODES${NODES:+,}http://127.0.0.1:$PORT"
done
for i in 1 2 3; do
	wait_healthy "http://127.0.0.1:$((PORT_BASE + i))" "node $i"
done
COORD_PORT=$((PORT_BASE + 4))
"$TMP/sramd" -coordinator -nodes "$NODES" -addr "127.0.0.1:$COORD_PORT" >"$TMP/coord.log" 2>&1 &
PIDS="$PIDS $!"
COORD="http://127.0.0.1:$COORD_PORT"
wait_healthy "$COORD" "coordinator"

echo "cluster-smoke: cluster batch run"
curl -fsS --data-binary @"$TMP/batch.ndjson" "$COORD/v1/batch" >"$TMP/cluster.ndjson" ||
	fail "cluster batch request failed"

echo "cluster-smoke: diffing cluster vs single node"
"$TMP/batchdiff" "$TMP/single.ndjson" "$TMP/cluster.ndjson" || fail "cluster results are not byte-identical"

# The batch must actually have been sharded: more than one node name in
# the result lines.
NODES_USED=$(sed -n 's/.*"node":"\([^"]*\)".*/\1/p' "$TMP/cluster.ndjson" | sort -u | wc -l)
[ "$NODES_USED" -ge 2 ] || fail "all jobs ran on one node; sharding is not happening"
echo "cluster-smoke: batch spread over $NODES_USED nodes"

echo "cluster-smoke: checking topology and metrics"
TOPO=$(curl -fsS "$COORD/v1/cluster")
printf '%s' "$TOPO" | grep -q '"healthy":true' || fail "no healthy node in topology: $TOPO"
METRICS=$(curl -fsS "$COORD/metrics")
printf '%s\n' "$METRICS" | grep -q '^sramd_cluster_nodes 3$' || fail "coordinator does not report 3 nodes"
printf '%s\n' "$METRICS" | grep -q '^sramd_cluster_batches_total 1$' || fail "batch not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_cluster_batch_errors_total 0$' || fail "batch errors reported in /metrics"

echo "cluster-smoke: resubmitting — must be all replica-store hits"
curl -fsS --data-binary @"$TMP/batch.ndjson" "$COORD/v1/batch" >"$TMP/cached.ndjson" ||
	fail "resubmitted batch request failed"
"$TMP/batchdiff" "$TMP/single.ndjson" "$TMP/cached.ndjson" || fail "cached results are not byte-identical"
MISSES=$(grep -cv '"cached":true' "$TMP/cached.ndjson" || true)
[ "$MISSES" = "0" ] || fail "$MISSES resubmitted lines were recomputed instead of served from the replica store"

echo "cluster-smoke: PASS"
