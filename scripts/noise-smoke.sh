#!/bin/sh
# noise-smoke.sh — end-to-end smoke test of the dynamic retention
# criterion, as run by CI and `make noise-smoke`: build the noisescan
# CLI and sramd, run the EXP-NS flip-probability scan on the known
# near-DRV cell (CS5-1 at fs/1.1V/125C) at two worker counts (must be
# byte-identical), gate the static-vs-noise criterion divergence — the
# noise ensemble must tighten CS5-1's retention threshold by >= 20 mV
# while leaving the strong-margin CS1-1 within a few mV of its static
# DRV — then fan the same scan out as two shard jobs through a daemon's
# POST /v1/batch (cmd/noisescan -cluster; merged output must be
# byte-identical to the local run), submit it once more as a whole
# daemon job (same bytes again), and check the noise counters surface
# on /metrics. Writes the report to results/noise-smoke.txt.
#
# The scan is kept small (5 rail points, the default 8-member
# ensembles) so the whole script runs in well under a minute; the full
# 13-point curve is the checked-in results/noise.txt artifact.
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon log.
set -eu

ADDR="${SRAMD_ADDR:-127.0.0.1:8359}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
LOG="$TMP/sramd.log"
PID=""
ARGS="-cs 5 -points 5"

fail() {
	echo "noise-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

# tighten FILE — extract the tightening row's millivolt value from an
# EXP-NS summary table.
tighten() {
	sed -n 's/.*tightening.*[^0-9.-]\([0-9][0-9]*\.[0-9]\) mV.*/\1/p' "$1" | head -n 1
}

echo "noise-smoke: building noisescan and sramd"
go build -o "$TMP/noisescan" ./cmd/noisescan
go build -o "$TMP/sramd" ./cmd/sramd

echo "noise-smoke: local scan at workers=1 and workers=4"
# shellcheck disable=SC2086 # ARGS is a flag list
"$TMP/noisescan" $ARGS -workers 1 >"$TMP/w1.txt" || fail "local run (workers=1) failed"
# shellcheck disable=SC2086
"$TMP/noisescan" $ARGS -workers 4 >"$TMP/w4.txt" || fail "local run (workers=4) failed"
cmp -s "$TMP/w1.txt" "$TMP/w4.txt" || fail "worker count changed the scan bytes"
grep -q "EXP-NS" "$TMP/w1.txt" || fail "not a noise report: $(cat "$TMP/w1.txt")"
grep -q "P(flip)" "$TMP/w1.txt" || fail "no flip-probability curve in the report"

echo "noise-smoke: static-vs-noise divergence gate"
CS5_MV=$(tighten "$TMP/w1.txt")
[ -n "$CS5_MV" ] || fail "no tightening row in the CS5-1 summary"
awk "BEGIN { exit !($CS5_MV >= 20) }" ||
	fail "near-DRV CS5-1 tightened only $CS5_MV mV, want >= 20 mV (criterion indistinguishable from static)"
"$TMP/noisescan" -cs 1 -points 5 -workers 2 >"$TMP/cs1.txt" || fail "CS1-1 scan failed"
CS1_MV=$(tighten "$TMP/cs1.txt")
[ -n "$CS1_MV" ] || fail "no tightening row in the CS1-1 summary"
awk "BEGIN { exit !($CS1_MV < 10) }" ||
	fail "strong-margin CS1-1 tightened $CS1_MV mV, want < 10 mV (noise criterion not selective)"
echo "noise-smoke: CS5-1 tightens $CS5_MV mV, CS1-1 only $CS1_MV mV"

echo "noise-smoke: starting sramd on $ADDR"
"$TMP/sramd" -addr "$ADDR" -store-dir "$TMP/store" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "daemon never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "daemon exited early"
	sleep 0.2
done

echo "noise-smoke: sharded cluster scan through POST /v1/batch"
# shellcheck disable=SC2086
"$TMP/noisescan" $ARGS -cluster "$BASE" -shards 2 >"$TMP/cluster.txt" || fail "cluster run failed"
cmp -s "$TMP/w1.txt" "$TMP/cluster.txt" || fail "cluster shards changed the scan bytes"

echo "noise-smoke: whole noisescan job through POST /v1/jobs"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" \
	-d '{"kind":"noisescan","noisescan":{"caseStudy":5,"points":5}}')
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
i=0
while :; do
	STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
	STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$STATE" in
	done) break ;;
	failed | canceled) fail "job ended in state $STATE: $STATUS" ;;
	esac
	i=$((i + 1))
	[ "$i" -lt 300 ] || fail "job did not finish in time: $STATUS"
	sleep 0.5
done
curl -fsS "$BASE/v1/jobs/$ID/result" >"$TMP/daemon.txt"
cmp -s "$TMP/w1.txt" "$TMP/daemon.txt" || fail "daemon job bytes differ from the local CLI run"

echo "noise-smoke: checking noise counters on /metrics"
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^sramd_noise_scans_total 1$' || fail "whole scan not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_noise_partials_total 2$' || fail "shard partials not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_noise_flips_total [1-9]' || fail "no flips counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_noise_last_tighten_volts 0\.0[0-9]' || fail "no tightening gauge in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_spice_ensemble_runs_total [1-9]' || fail "no ensemble runs counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_spice_noise_evals_total [1-9]' || fail "no noise evals counted in /metrics"

echo "noise-smoke: shutting down"
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on SIGTERM"
PID=""

mkdir -p results
cp "$TMP/w1.txt" results/noise-smoke.txt
echo "noise-smoke: PASS (results/noise-smoke.txt)"
