#!/bin/sh
# bench-report.sh — run the solver-centric benchmark suite and emit a
# machine-readable report (BENCH_10.json) comparing it against the
# checked-in pre-optimization baseline (benchmarks/baseline.txt), as run
# by CI and `make bench-report`.
#
# The allocation gate is enforced (allocs/op is machine-independent);
# wall-clock ratios are reported but not gated, since the baseline was
# recorded on different hardware than the CI runners. The tiered-engine,
# yield and faultmap benchmarks carry their own deterministic gates
# (>=3x fewer full-SPICE solves than the exact backend; >=100x fewer
# exact solves than naive Monte-Carlo at matched CI width; March m-LZ
# fully covers a nonzero DRF population that March C- escapes) inside
# the benchmark bodies; the yield and faultmap gates are re-checked here
# from the bench output so a failure cannot hide behind the tee
# pipeline.
#
# Requires only a POSIX shell and go. Exits non-zero on any failure.
set -eu

OUT="${1:-BENCH_10.json}"
RAW="${OUT%.json}.bench.txt"
BASELINE="benchmarks/baseline.txt"
BENCHES='^(BenchmarkTable2|BenchmarkTable2Tiered|BenchmarkDictionaryBuild|BenchmarkDictionaryBuildTiered|BenchmarkDiagnoseIndexed|BenchmarkRegulatorOP|BenchmarkRegulatorOPWarm|BenchmarkDSEntryTransient|BenchmarkDiagnose|BenchmarkYield6Sigma|BenchmarkFaultMapCoverage|BenchmarkNoiseCriterion)$'

echo "bench-report: running benchmark suite (this takes a few minutes)"
go test -run '^$' -bench "$BENCHES" -benchmem -benchtime=1x -count=5 . | tee "$RAW"

echo "bench-report: checking yield speedup gate (>= 100x over naive MC)"
YIELD_SPEEDUP=$(awk '/^BenchmarkYield6Sigma/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "speedup") { print $i; exit }
}' "$RAW")
[ -n "$YIELD_SPEEDUP" ] || {
	echo "bench-report: FAIL: no speedup metric in BenchmarkYield6Sigma output" >&2
	exit 1
}
awk "BEGIN { exit !($YIELD_SPEEDUP >= 100) }" || {
	echo "bench-report: FAIL: yield speedup ${YIELD_SPEEDUP}x < 100x" >&2
	exit 1
}
echo "bench-report: yield speedup ${YIELD_SPEEDUP}x"

echo "bench-report: checking faultmap DRF gate (m-LZ DRF coverage = 1 on a nonzero DRF population)"
FM_DRF_COV=$(awk '/^BenchmarkFaultMapCoverage/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "mlz-drf-cov") { print $i; exit }
}' "$RAW")
FM_DRF_BITS=$(awk '/^BenchmarkFaultMapCoverage/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "drf-bits") { print $i; exit }
}' "$RAW")
[ -n "$FM_DRF_COV" ] && [ -n "$FM_DRF_BITS" ] || {
	echo "bench-report: FAIL: no DRF metrics in BenchmarkFaultMapCoverage output" >&2
	exit 1
}
awk "BEGIN { exit !($FM_DRF_BITS >= 1 && $FM_DRF_COV >= 1) }" || {
	echo "bench-report: FAIL: faultmap DRF gate: coverage $FM_DRF_COV on $FM_DRF_BITS DRF bits" >&2
	exit 1
}
echo "bench-report: faultmap m-LZ covers $FM_DRF_BITS DRF bits"

echo "bench-report: checking indexed-matcher gate (>= 20x over the linear scan on >= 1e5 entries)"
DX_SPEEDUP=$(awk '/^BenchmarkDiagnoseIndexed/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "speedup") { print $i; exit }
}' "$RAW")
DX_ENTRIES=$(awk '/^BenchmarkDiagnoseIndexed/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "dict-entries") { print $i; exit }
}' "$RAW")
[ -n "$DX_SPEEDUP" ] && [ -n "$DX_ENTRIES" ] || {
	echo "bench-report: FAIL: no speedup/dict-entries metrics in BenchmarkDiagnoseIndexed output" >&2
	exit 1
}
awk "BEGIN { exit !($DX_ENTRIES >= 100000 && $DX_SPEEDUP >= 20) }" || {
	echo "bench-report: FAIL: indexed matcher ${DX_SPEEDUP}x on $DX_ENTRIES entries (want >= 20x on >= 1e5)" >&2
	exit 1
}
echo "bench-report: indexed matcher ${DX_SPEEDUP}x over the linear scan on $DX_ENTRIES entries"

echo "bench-report: checking noise-criterion gates (>= 2x warm-start reuse, >= 20 mV near-DRV tightening)"
NS_RATIO=$(awk '/^BenchmarkNoiseCriterion/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "cold/warm-dc-iters") { print $i; exit }
}' "$RAW")
NS_TIGHTEN=$(awk '/^BenchmarkNoiseCriterion/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "tighten-mv") { print $i; exit }
}' "$RAW")
[ -n "$NS_RATIO" ] && [ -n "$NS_TIGHTEN" ] || {
	echo "bench-report: FAIL: no warm-reuse/tightening metrics in BenchmarkNoiseCriterion output" >&2
	exit 1
}
awk "BEGIN { exit !($NS_RATIO >= 2 && $NS_TIGHTEN >= 20) }" || {
	echo "bench-report: FAIL: noise criterion: warm-start reuse ${NS_RATIO}x (want >= 2x), tightening ${NS_TIGHTEN} mV (want >= 20)" >&2
	exit 1
}
echo "bench-report: noise ensembles reuse warm starts at ${NS_RATIO}x fewer DC iters; CS5-1 tightens ${NS_TIGHTEN} mV"

echo "bench-report: generating $OUT"
go run ./cmd/benchreport \
	-in "$RAW" \
	-baseline "$BASELINE" \
	-o "$OUT" \
	-check BenchmarkTable2,BenchmarkDictionaryBuild \
	-min-alloc-ratio 2

echo "bench-report: PASS ($OUT)"
