#!/bin/sh
# bench-report.sh — run the solver-centric benchmark suite and emit a
# machine-readable report (BENCH_5.json) comparing it against the
# checked-in pre-optimization baseline (benchmarks/baseline.txt), as run
# by CI and `make bench-report`.
#
# The allocation gate is enforced (allocs/op is machine-independent);
# wall-clock ratios are reported but not gated, since the baseline was
# recorded on different hardware than the CI runners. The tiered-engine
# benchmarks carry their own deterministic gate (>=3x fewer full-SPICE
# solves than the exact backend) inside the benchmark bodies, so a
# regression there fails this script through the bench run itself.
#
# Requires only a POSIX shell and go. Exits non-zero on any failure.
set -eu

OUT="${1:-BENCH_5.json}"
RAW="${OUT%.json}.bench.txt"
BASELINE="benchmarks/baseline.txt"
BENCHES='^(BenchmarkTable2|BenchmarkTable2Tiered|BenchmarkDictionaryBuild|BenchmarkDictionaryBuildTiered|BenchmarkRegulatorOP|BenchmarkRegulatorOPWarm|BenchmarkDSEntryTransient|BenchmarkDiagnose)$'

echo "bench-report: running benchmark suite (this takes a few minutes)"
go test -run '^$' -bench "$BENCHES" -benchmem -benchtime=1x -count=5 . | tee "$RAW"

echo "bench-report: generating $OUT"
go run ./cmd/benchreport \
	-in "$RAW" \
	-baseline "$BASELINE" \
	-o "$OUT" \
	-check BenchmarkTable2,BenchmarkDictionaryBuild \
	-min-alloc-ratio 2

echo "bench-report: PASS ($OUT)"
