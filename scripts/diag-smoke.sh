#!/bin/sh
# diag-smoke.sh — end-to-end smoke test of the diagnose CLI, as run by
# CI and `make diag-smoke`: build a tiny fault dictionary, print its
# ambiguity statistics, match a simulated failing device, and run the
# adaptive refinement on the Df1/Df2 pair the three-condition flow
# cannot separate.
#
# Requires only a POSIX shell and go. Exits non-zero on any failure.
set -eu

TMP="$(mktemp -d)"
DICT="$TMP/dict.json"

fail() {
	echo "diag-smoke: FAIL: $*" >&2
	exit 1
}

cleanup() {
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "diag-smoke: building diagnose"
go build -o "$TMP/diagnose" ./cmd/diagnose

echo "diag-smoke: building a tiny dictionary (Df1, Df2 at 1 MOhm, CS1)"
"$TMP/diagnose" build -defects 1,2 -cs 1 -decades 1e6 -o "$DICT"
[ -s "$DICT" ] || fail "dictionary artifact missing"
grep -q '"version": 1' "$DICT" || fail "artifact lacks a version stamp"

echo "diag-smoke: stats"
STATS=$("$TMP/diagnose" stats -dict "$DICT")
printf '%s\n' "$STATS" | grep -q 'dictionary entries' || fail "no stats table: $STATS"

echo "diag-smoke: match (expect a two-candidate Df1/Df2 ambiguity)"
MATCH=$("$TMP/diagnose" match -dict "$DICT" -defect 1 -res 1e6)
printf '%s\n' "$MATCH" | grep -q 'exact dictionary hit' || fail "no exact hit: $MATCH"
printf '%s\n' "$MATCH" | grep -q 'ambiguity set holds 2' || fail "expected Df1/Df2 ambiguity: $MATCH"

echo "diag-smoke: adaptive (expect the refiner to resolve Df1)"
ADAPT=$("$TMP/diagnose" adaptive -dict "$DICT" -defect 1 -res 1e6)
printf '%s\n' "$ADAPT" | grep -q 'refine step 1' || fail "refiner took no step: $ADAPT"
printf '%s\n' "$ADAPT" | grep -q 'resolved: Df1' || fail "refiner missed Df1: $ADAPT"

echo "diag-smoke: PASS"
