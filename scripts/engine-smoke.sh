#!/bin/sh
# engine-smoke.sh — engine-matrix smoke test, as run by CI and `make
# engine-smoke`: run the same characterization and dictionary build
# under -engine spice and -engine tiered and require byte-identical
# artifacts (the tiered backend's equivalence contract), then sanity-run
# the standalone surrogate (approximate by design, so it is only checked
# for a clean exit and well-formed output, never diffed).
#
# Requires only a POSIX shell and go. Exits non-zero on any failure.
set -eu

TMP="$(mktemp -d)"

fail() {
	echo "engine-smoke: FAIL: $*" >&2
	exit 1
}

cleanup() {
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "engine-smoke: building defectchar and diagnose"
go build -o "$TMP/defectchar" ./cmd/defectchar
go build -o "$TMP/diagnose" ./cmd/diagnose

echo "engine-smoke: Df16/CS1 characterization, spice vs tiered"
"$TMP/defectchar" -defect 16 -cs 1 -csv -engine spice >"$TMP/charac-spice.csv" 2>/dev/null
"$TMP/defectchar" -defect 16 -cs 1 -csv -engine tiered >"$TMP/charac-tiered.csv" 2>/dev/null
diff -u "$TMP/charac-spice.csv" "$TMP/charac-tiered.csv" \
	|| fail "tiered characterization diverged from spice"
grep -q 'Df16' "$TMP/charac-spice.csv" || fail "characterization table empty"

echo "engine-smoke: dictionary build, spice vs tiered"
"$TMP/diagnose" build -defects 12,16 -cs 1 -decades 1e4,1e6 -base-only \
	-engine spice -o "$TMP/dict-spice.json" 2>/dev/null
"$TMP/diagnose" build -defects 12,16 -cs 1 -decades 1e4,1e6 -base-only \
	-engine tiered -o "$TMP/dict-tiered.json" 2>/dev/null
diff -u "$TMP/dict-spice.json" "$TMP/dict-tiered.json" \
	|| fail "tiered dictionary diverged from spice"
grep -q '"version": 1' "$TMP/dict-spice.json" || fail "artifact lacks a version stamp"

echo "engine-smoke: surrogate sanity run (approximate, not diffed)"
"$TMP/defectchar" -defect 16 -cs 1 -csv -engine surrogate >"$TMP/charac-surrogate.csv" 2>/dev/null
grep -q 'Df16' "$TMP/charac-surrogate.csv" || fail "surrogate run produced no table"

echo "engine-smoke: bad engine name is rejected"
if "$TMP/defectchar" -defect 16 -cs 1 -engine nosuch >/dev/null 2>&1; then
	fail "unknown engine accepted"
fi

echo "engine-smoke: PASS"
