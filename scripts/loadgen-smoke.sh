#!/bin/sh
# loadgen-smoke.sh — short load-generator gate, as run by CI and
# `make loadgen-smoke`: boot one fixture-mode sramd node (-sim-job, so
# the ~10s run measures the serving fabric, not SPICE), drive a low-rate
# mega-sweep slice through cmd/loadgen, and fail on any dropped or
# errored request. The throughput/latency report is written to
# results/loadgen-smoke.json and uploaded as a CI artifact.
set -eu

ADDR="${SRAMD_ADDR:-127.0.0.1:8380}"
BASE="http://$ADDR"
OUT="${LOADGEN_REPORT:-results/loadgen-smoke.json}"
TMP="$(mktemp -d)"
PID=""

fail() {
	echo "loadgen-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$TMP/sramd.log" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "loadgen-smoke: building sramd and loadgen"
go build -o "$TMP/sramd" ./cmd/sramd
go build -o "$TMP/loadgen" ./cmd/loadgen

echo "loadgen-smoke: starting fixture-mode sramd on $ADDR"
"$TMP/sramd" -addr "$ADDR" -sim-job 5ms -jobs 4 -queue 64 >"$TMP/sramd.log" 2>&1 &
PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "daemon never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "daemon exited early"
	sleep 0.2
done

mkdir -p "$(dirname "$OUT")"

echo "loadgen-smoke: rate-limited job-mode run (~5s)"
"$TMP/loadgen" -target "$BASE" -mode jobs -set mega -n 60 -rate 20 -inflight 8 \
	-o "$TMP/jobs-report.json" || fail "job-mode load run dropped or errored requests"

echo "loadgen-smoke: batch-mode run"
"$TMP/loadgen" -target "$BASE" -mode batch -set mega -n 200 -inflight 16 \
	-o "$OUT" || fail "batch-mode load run dropped or errored requests"

grep -q '"errors": 0' "$OUT" || fail "report claims errors: $(cat "$OUT")"
echo "loadgen-smoke: report:"
cat "$OUT"
echo "loadgen-smoke: PASS"
