#!/bin/sh
# yield-smoke.sh — end-to-end smoke test of the rare-event yield path,
# as run by CI and `make yield-smoke`: build the yield CLI and sramd,
# run a small local estimate at two worker counts (must be
# byte-identical), fan the same estimate out as two shard jobs through
# a daemon's POST /v1/batch (cmd/yield -cluster; merged output must be
# byte-identical to the local run), submit it once more as a whole
# daemon job (same bytes again), and check the yield counters surface
# on /metrics. Writes the report to results/yield-smoke.txt.
#
# The estimate itself is kept small (64 samples at a shallow Vref) so
# the whole script runs in well under a minute; the deep-tail default
# is exercised by BenchmarkYield6Sigma and results/yield.txt.
#
# Requires only a POSIX shell, curl and go. Exits non-zero on any
# failure and prints the daemon log.
set -eu

ADDR="${SRAMD_ADDR:-127.0.0.1:8358}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
LOG="$TMP/sramd.log"
PID=""
ARGS="-n 64 -vref 0.34"

fail() {
	echo "yield-smoke: FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "yield-smoke: building yield and sramd"
go build -o "$TMP/yield" ./cmd/yield
go build -o "$TMP/sramd" ./cmd/sramd

echo "yield-smoke: local estimate at workers=1 and workers=4"
# shellcheck disable=SC2086 # ARGS is a flag list
"$TMP/yield" $ARGS -workers 1 >"$TMP/w1.txt" || fail "local run (workers=1) failed"
# shellcheck disable=SC2086
"$TMP/yield" $ARGS -workers 4 >"$TMP/w4.txt" || fail "local run (workers=4) failed"
cmp -s "$TMP/w1.txt" "$TMP/w4.txt" || fail "worker count changed the estimate bytes"
grep -q "EXP-YD" "$TMP/w1.txt" || fail "not a yield report: $(cat "$TMP/w1.txt")"
grep -q "failure probability" "$TMP/w1.txt" || fail "no probability row in the report"

echo "yield-smoke: starting sramd on $ADDR"
"$TMP/sramd" -addr "$ADDR" -store-dir "$TMP/store" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "daemon never became healthy"
	kill -0 "$PID" 2>/dev/null || fail "daemon exited early"
	sleep 0.2
done

echo "yield-smoke: sharded cluster estimate through POST /v1/batch"
# shellcheck disable=SC2086
"$TMP/yield" $ARGS -cluster "$BASE" -shards 2 >"$TMP/cluster.txt" || fail "cluster run failed"
cmp -s "$TMP/w1.txt" "$TMP/cluster.txt" || fail "cluster shards changed the estimate bytes"

echo "yield-smoke: whole yield job through POST /v1/jobs"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" \
	-d '{"kind":"yield","yield":{"samples":64,"vref":0.34}}')
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
i=0
while :; do
	STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
	STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case "$STATE" in
	done) break ;;
	failed | canceled) fail "job ended in state $STATE: $STATUS" ;;
	esac
	i=$((i + 1))
	[ "$i" -lt 300 ] || fail "job did not finish in time: $STATUS"
	sleep 0.5
done
curl -fsS "$BASE/v1/jobs/$ID/result" >"$TMP/daemon.txt"
cmp -s "$TMP/w1.txt" "$TMP/daemon.txt" || fail "daemon job bytes differ from the local CLI run"

echo "yield-smoke: checking yield counters on /metrics"
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^sramd_yield_runs_total 1$' || fail "whole estimate not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_yield_partials_total 2$' || fail "shard partials not counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_yield_exact_solves_total [1-9]' || fail "no exact solves counted in /metrics"
printf '%s\n' "$METRICS" | grep -q '^sramd_yield_last_ess [0-9]' || fail "no ESS gauge in /metrics"

echo "yield-smoke: shutting down"
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on SIGTERM"
PID=""

mkdir -p results
cp "$TMP/w1.txt" results/yield-smoke.txt
echo "yield-smoke: PASS (results/yield-smoke.txt)"
