// Flow optimization: Section V of the paper end-to-end.
//
// Measure how detectable a representative defect subset is at each of the
// 12 (VDD, Vref) test conditions, then derive the optimized production
// flow — reproducing Table III's three iterations and the 75 % test-time
// reduction. (The full 17-defect measurement lives in cmd/flow; this
// example uses four defects that exercise every decision in the
// optimizer: one per divider group plus the most critical amplifier
// defect.)
//
// Run with: go run ./examples/flowopt
package main

import (
	"fmt"
	"log"

	"sramtest"
	"sramtest/internal/march"
	"sramtest/internal/sram"
)

func main() {
	opt := sramtest.DefaultFlowMeasureOptions()
	opt.Defects = []sramtest.Defect{
		sramtest.Defect(16), // output stage: maximized at the tightest margin
		sramtest.Defect(2),  // divider: needs Vref ≤ 0.74·VDD
		sramtest.Defect(3),  // divider: needs Vref ≤ 0.70·VDD
		sramtest.Defect(4),  // divider: needs Vref = 0.64·VDD
	}

	// The flow's Vreg floor: the worst-case cell's retention voltage.
	worst := sramtest.NewCell(sramtest.WorstCaseVariation(),
		sramtest.Condition{Corner: opt.Corner, VDD: 1.1, TempC: opt.TempC}).DRV1()
	fmt.Printf("worst-case DRV_DS = %.0f mV (paper: 730 mV)\n", worst*1e3)
	fmt.Println("measuring 4 defects × 12 test conditions (takes a minute)...")

	flow, err := sramtest.OptimizeFlow(opt, worst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nOptimized test flow (paper Table III):")
	for i, it := range flow.Iterations {
		fmt.Printf("  iteration %d: VDD=%.1fV, Vref=%s, measured Vreg=%.0fmV, DS time=%.0fms, maximizes %v\n",
			i+1, it.Cond.VDD, it.Cond.Level, it.MeasuredVreg*1e3, it.Dwell*1e3, it.Maximizes)
	}

	t := march.MarchMLZ()
	fmt.Printf("\nMarch m-LZ: %s\n", t)
	fmt.Printf("optimized flow:  %.2f ms\n", flow.TestTime(t, sram.Words, sram.CycleTime)*1e3)
	fmt.Printf("exhaustive flow: %.2f ms\n", flow.ExhaustiveTestTime(t, sram.Words, sram.CycleTime)*1e3)
	fmt.Printf("test-time reduction: %.0f%% (paper: 75%%)\n", flow.TimeReduction()*100)
}
