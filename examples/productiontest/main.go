// Production test: the paper's complete flow, end to end, on-chip style.
//
// A device under test arrives with one resistive-open defect in its
// voltage regulator and a worst-case-variation cell in its array. The
// production flow runs March m-LZ three times — the Table III iterations
// (1.0V/0.74, 1.1V/0.70, 1.2V/0.64) — through the cycle-accurate BIST
// engine, with the deep-sleep retention physics supplied by the full
// electrical chain (regulator netlist + cell stability analysis).
//
// Try different defects and resistances; Df3 is only caught from
// iteration 2 onward and Df4 only by iteration 3, which is exactly why
// the flow has three iterations.
//
// Run with: go run ./examples/productiontest [Df] [resistance]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"sramtest"
	"sramtest/internal/regulator"
	"sramtest/internal/spice"
	"sramtest/internal/sram"
)

func main() {
	defect := sramtest.Defect(3) // Df3: the iteration-2 defect
	resistance := 2e6
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || !sramtest.Defect(n).Valid() {
			log.Fatalf("bad defect %q", os.Args[1])
		}
		defect = sramtest.Defect(n)
	}
	if len(os.Args) > 2 {
		v, err := spice.ParseValue(os.Args[2])
		if err != nil {
			log.Fatalf("bad resistance %q", os.Args[2])
		}
		resistance = v
	}
	fmt.Printf("device under test: %s open at %.3g Ω (%s)\n\n",
		defect, resistance, sramtest.DefectOf(defect).Desc)

	// The paper's Table III iterations. The production tester sets VDD
	// and VrefSel per iteration; high temperature maximizes detection.
	iterations := []struct {
		vdd   float64
		level sramtest.VrefLevel
	}{
		{1.0, regulator.L74},
		{1.1, regulator.L70},
		{1.2, regulator.L64},
	}

	prog, err := sramtest.CompileBIST(sramtest.MarchMLZ())
	if err != nil {
		log.Fatal(err)
	}

	devicePasses := true
	for i, it := range iterations {
		cond := sramtest.Condition{Corner: sramtest.FS, VDD: it.vdd, TempC: 125}

		// The electrical chain: defective regulator -> DS rail -> cell
		// retention. (Level override: the tester programs VrefSel.)
		ret, err := electricalRetention(cond, it.level, defect, resistance)
		if err != nil {
			log.Fatal(err)
		}

		mem := sramtest.NewSRAM()
		mem.SetRetention(ret)
		// The device's weak spot: one worst-case cell (per-polarity pair
		// so both DS dwells of March m-LZ are meaningful).
		mem.RegisterVariation(0x0AB, 13, sramtest.WorstCaseVariation())
		mem.RegisterVariation(0x0AC, 13, sramtest.WorstCaseVariation().Mirror())

		res, err := sramtest.NewBIST(prog, mem).Run()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "PASS"
		if !res.Pass() {
			verdict = fmt.Sprintf("FAIL (%d miscompares, first %v)", res.Total, res.Failures[0])
			devicePasses = false
		}
		fmt.Printf("iteration %d: VDD=%.1fV Vref=%v rail=%.0fmV  BIST %d cycles -> %s\n",
			i+1, it.vdd, it.level, ret.RailVoltage()*1e3, res.Cycles, verdict)
	}

	fmt.Println()
	if devicePasses {
		fmt.Println("DEVICE PASSES — the open is below the detectable resistance at")
		fmt.Println("every flow condition (or the defect class never causes DRF_DS).")
	} else {
		fmt.Println("DEVICE REJECTED — data retention fault in deep-sleep mode.")
	}
}

// electricalRetention builds the retention model with an explicit
// reference level (the facade default follows the paper's per-VDD
// selection, which coincides with the flow's levels).
func electricalRetention(cond sramtest.Condition, level sramtest.VrefLevel, d sramtest.Defect, res float64) (sramtest.RetentionModel, error) {
	if regulator.SelectFor(cond.VDD) != level {
		return nil, fmt.Errorf("flow level mismatch at VDD=%g", cond.VDD)
	}
	return sram.NewElectricalRetention(cond, d, res)
}
