// Defect study: Section IV of the paper for one resistive-open defect.
//
// Take Df16 (series resistance in the output stage's source — the most
// critical defect of Table II), classify it, sweep its resistance to show
// the regulated rail collapsing, and find the minimal resistance that
// loses data for two case studies of cell variation.
//
// Run with: go run ./examples/defectstudy
package main

import (
	"fmt"
	"log"

	"sramtest"
)

func main() {
	cond := sramtest.Condition{Corner: sramtest.FS, VDD: 1.0, TempC: 125}
	d := sramtest.Defect(16)
	info := sramtest.DefectOf(d)
	fmt.Printf("defect %s: %s\n", d, info.Desc)

	reg := sramtest.NewRegulator(cond)
	cat, err := reg.Classify(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated category: %s (paper: %s)\n\n", cat, info.Expected)

	fmt.Println("== Vreg vs defect resistance ==")
	ff, err := reg.FaultFreeVreg()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fault-free: V_DD_CC = %.1f mV (target %.0f mV)\n", ff*1e3, 740.0)
	for _, res := range []float64{100, 1e3, 3e3, 10e3, 100e3, 1e6} {
		reg.InjectDefect(d, res)
		v, _, err := reg.SolveDS(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R=%8.0fΩ: V_DD_CC = %.1f mV\n", res, v*1e3)
	}
	reg.ClearDefects()

	fmt.Println("\n== minimal DRF-causing resistance (Table II cells) ==")
	opt := sramtest.DefaultCharacOptions()
	opt.Conditions = []sramtest.Condition{cond}
	css := sramtest.Table1CaseStudies()
	for _, idx := range []int{0, 6} { // CS1-1 (worst case) and CS4-1 (mild)
		res, err := sramtest.CharacterizeDefect(d, css[idx], opt)
		if err != nil {
			log.Fatal(err)
		}
		if res.Open() {
			fmt.Printf("  %s: no DRF up to 500 MΩ\n", css[idx].Name)
		} else {
			fmt.Printf("  %s: min resistance = %.3g Ω\n", css[idx].Name, res.MinRes)
		}
	}
	fmt.Println("\nThe worst-case cell fails at kΩ-scale opens; the mild CS4 cell needs")
	fmt.Println("the rail pulled an order of magnitude lower — Table II's structure.")
}
