// Stability: verifying the regulator design itself with the library's AC
// small-signal analysis.
//
// The paper takes a working regulator as given; a reproduction has to
// design one, and this example shows the verification loop that shaped
// it: open-loop Bode response, unity-gain crossover and phase margin at
// the paper's three flow conditions (the uncompensated design had single
// digit margins — see DESIGN.md §5.2b).
//
// Run with: go run ./examples/stability
package main

import (
	"fmt"
	"log"

	"sramtest"
	"sramtest/internal/num"
)

func main() {
	for _, tc := range []struct{ vdd, temp float64 }{
		{1.0, 125}, {1.1, 25}, {1.2, -30},
	} {
		cond := sramtest.Condition{Corner: sramtest.FS, VDD: tc.vdd, TempC: tc.temp}
		reg := sramtest.NewRegulator(cond)

		freqs := num.Logspace(10, 1e9, 9)
		mag, ph, err := reg.LoopGain(freqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", cond)
		fmt.Println("  freq        |L| dB   phase")
		for i, f := range freqs {
			fmt.Printf("  %8.3g Hz %7.1f %7.1f°\n", f, mag[i], ph[i])
		}
		pm, fc, err := reg.PhaseMargin()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  unity crossing at %.3g Hz, phase margin %.1f°\n\n", fc, pm)
	}
	fmt.Println("A phase margin above ~45° keeps the DS-entry hand-over clean; the")
	fmt.Println("Miller network with its nulling resistor is what provides it.")
}
