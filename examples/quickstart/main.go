// Quickstart: the paper's headline result in ~40 lines.
//
// Build the low-power SRAM, give it a regulator whose output sits below
// the retention voltage of one weak cell, and show that the paper's March
// m-LZ detects the resulting deep-sleep data retention fault while the
// older March LZ (which only light-sleeps) misses it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sramtest"
)

func main() {
	// The PVT condition the paper finds worst for most defects.
	cond := sramtest.Condition{Corner: sramtest.FS, VDD: 1.0, TempC: 125}

	// A deep-sleep rail of 500 mV: plenty for symmetric cells (DRV ≈
	// 68 mV) but far below the worst-case cell's ≈726 mV.
	retention := sramtest.NewThresholdRetention(cond, 0.50)

	mem := sramtest.NewSRAM()
	mem.SetRetention(retention)
	// One cell carries the paper's worst-case 6σ Vth variation.
	mem.RegisterVariation(0x123, 7, sramtest.WorstCaseVariation())

	for _, test := range []sramtest.MarchTest{sramtest.MarchLZ(), sramtest.MarchMLZ()} {
		// Each algorithm gets a fresh device (the fault is permanent,
		// but test runs must not share state).
		mem := sramtest.NewSRAM()
		mem.SetRetention(retention)
		mem.RegisterVariation(0x123, 7, sramtest.WorstCaseVariation())

		rep, err := sramtest.RunMarch(test, mem)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "PASS (fault escaped!)"
		if rep.Detected() {
			verdict = fmt.Sprintf("FAIL detected — %v", rep.Failures[0])
		}
		fmt.Printf("%-10s %-50s -> %s\n", test.Name, test.String(), verdict)
	}
	fmt.Println("\nOnly March m-LZ enters deep sleep, so only it sensitizes the DRF_DS.")
}
