// Retention study: Section III of the paper as a runnable walkthrough.
//
// For a 6T cell with increasing Vth skew, print the deep-sleep static
// noise margins at a few supply levels and the resulting retention
// voltages DRV_DS0/DRV_DS1, then run a small Monte-Carlo to show where a
// manufactured array's worst cell typically lands between the symmetric
// baseline and the theoretical 6σ worst case.
//
// Run with: go run ./examples/retention
package main

import (
	"fmt"
	"math/rand"

	"sramtest"
	"sramtest/internal/process"
)

func main() {
	cond := sramtest.Condition{Corner: sramtest.FS, VDD: 1.1, TempC: 125}

	fmt.Println("== SNM collapse with supply scaling (symmetric cell) ==")
	sym := sramtest.NewCell(sramtest.Variation{}, cond)
	for _, vcc := range []float64{1.1, 0.5, 0.2, 0.1, 0.05} {
		s0, s1 := sym.SNM(vcc)
		fmt.Printf("  Vcc=%4.0fmV  SNM_DS0=%5.1fmV  SNM_DS1=%5.1fmV\n", vcc*1e3, s0*1e3, s1*1e3)
	}

	fmt.Println("\n== DRV vs variation strength (the Table I mechanism) ==")
	for _, sigma := range []float64{0, 1, 2, 3, 4.5, 6} {
		v := sramtest.Variation{
			sramtest.MPcc1: -sigma, sramtest.MNcc1: -sigma,
			sramtest.MPcc2: +sigma, sramtest.MNcc2: +sigma,
		}
		c := sramtest.NewCell(v, cond)
		fmt.Printf("  ±%.1fσ on both inverters: DRV_DS1 = %3.0f mV, DRV_DS0 = %3.0f mV\n",
			sigma, c.DRV1()*1e3, c.DRV0()*1e3)
	}

	fmt.Println("\n== Monte-Carlo: worst cell of a 512-cell sample ==")
	rng := rand.New(rand.NewSource(2013))
	worst := 0.0
	var worstVar sramtest.Variation
	for i := 0; i < 512; i++ {
		v := process.RandomVariation(rng)
		c := sramtest.NewCell(v, cond)
		if d := c.DRV1(); d > worst {
			worst, worstVar = d, v
		}
	}
	fmt.Printf("  worst sampled DRV_DS1 = %.0f mV (variation: %s)\n", worst*1e3, worstVar)
	wc := sramtest.NewCell(sramtest.WorstCaseVariation(), cond)
	fmt.Printf("  theoretical 6σ worst case        = %.0f mV (paper: 730 mV)\n", wc.DRV1()*1e3)
	fmt.Println("\nThe regulator's lowest fault-free output (740 mV at VDD=1.0V) sits")
	fmt.Println("just above that worst case — the margin the whole test flow protects.")
}
