// Command loadgen drives an sramd node or cluster coordinator with a
// synthetic characterization workload at a configurable request rate
// and reports sustained throughput and latency percentiles. It is the
// harness behind the cluster scaling numbers (EXPERIMENTS.md) and the
// CI loadgen-smoke gate, which fails on any dropped or errored request.
//
// Spec sets:
//
//	mc     unique Monte-Carlo DRV jobs (distinct seeds; always computes)
//	table2 the 85 single-(defect, case-study) Table II cells, cycled
//	       (repeats are cache hits — a serving-heavy mix)
//	mega   the Table II × Monte-Carlo mega-sweep: all 85 Table II cells
//	       interleaved with fresh-seeded MC shards
//
// Modes:
//
//	jobs   one POST /v1/jobs per spec, polled to completion — per-job
//	       latency is the submit-to-result wall clock
//	batch  a single POST /v1/batch NDJSON request; the server paces
//	       intake (the -rate flag does not apply), latency is
//	       time-to-line since the batch started
//	diag   a single POST /v1/diagnose NDJSON signature stream sampled
//	       from -diag-dict (the spec-set flags do not apply); reports
//	       end-to-end signatures/minute against a node or coordinator
//	       serving the same dictionary
//
// Exit status is non-zero when any request errored, which is the CI
// gate. Against a fixture daemon (`sramd -sim-job 25ms`) the workload
// measures the serving fabric without competing for the host's cores;
// see the README's "Running a cluster" section.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sramtest/internal/cluster"
	"sramtest/internal/diag"
	"sramtest/internal/diag/diagtest"
	"sramtest/internal/jobs"
	"sramtest/internal/regulator"
)

func main() {
	var (
		target    = flag.String("target", "http://127.0.0.1:8347", "sramd node or coordinator base URL")
		mode      = flag.String("mode", "jobs", "driving mode: jobs|batch|diag")
		set       = flag.String("set", "mc", "spec set: mc|table2|mega")
		n         = flag.Int("n", 200, "total requests (jobs mode) or batch lines")
		duration  = flag.Duration("duration", 0, "stop submitting after this long (jobs mode; 0 = run all -n)")
		rate      = flag.Float64("rate", 0, "target submissions per second (jobs mode; 0 = as fast as -inflight allows)")
		inflight  = flag.Int("inflight", 16, "max requests in flight (jobs mode)")
		mcSamples = flag.Int("mc-samples", 32, "samples per Monte-Carlo spec")
		seed      = flag.Int64("seed", 1, "base seed for unique Monte-Carlo specs")
		engineN   = flag.String("engine", "", "engine field stamped on every spec (default: the daemon's default)")
		diagDict  = flag.String("diag-dict", "", "dictionary artifact to sample diagnosis queries from (diag mode)")
		diagBin   = flag.Bool("diag-bin", false, "send compact binary-codec lines instead of JSON signatures (diag mode)")
		out       = flag.String("o", "", "write the JSON report to this file")
		quiet     = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()

	var rep *report
	switch *mode {
	case "jobs", "batch":
		specs, err := buildSpecs(*set, *n, *mcSamples, *seed, *engineN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		if *mode == "jobs" {
			rep = runJobs(*target, specs, *rate, *inflight, *duration)
		} else {
			rep = runBatch(*target, specs)
		}
	case "diag":
		if *diagDict == "" {
			fmt.Fprintln(os.Stderr, "loadgen: -mode diag requires -diag-dict")
			os.Exit(2)
		}
		rep = runDiag(*target, *diagDict, *n, *seed, *diagBin)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown mode %q (want jobs|batch|diag)\n", *mode)
		os.Exit(2)
	}
	rep.Set, rep.Mode = *set, *mode

	if !*quiet {
		rep.print(os.Stdout)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: report:", err)
			os.Exit(1)
		}
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d of %d requests errored\n", rep.Errors, rep.Requested)
		for _, e := range rep.ErrorSamples {
			fmt.Fprintln(os.Stderr, "loadgen:   ", e)
		}
		os.Exit(1)
	}
}

// buildSpecs generates the workload. Every spec is a valid jobs.Spec
// the daemon would accept on /v1/jobs.
func buildSpecs(set string, n, mcSamples int, seed int64, engine string) ([]jobs.Spec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("-n must be >= 1")
	}
	if mcSamples < 1 {
		return nil, fmt.Errorf("-mc-samples must be >= 1")
	}
	table2 := func(i int) jobs.Spec {
		ds := regulator.DRFCandidates()
		d := int(ds[i%len(ds)])
		cs := (i/len(ds))%5 + 1
		return jobs.Spec{Kind: jobs.KindCharac, Charac: &jobs.CharacSpec{Defects: []int{d}, CaseStudies: []int{cs}}}
	}
	mc := func(i int) jobs.Spec {
		return jobs.Spec{Kind: jobs.KindExp, Exp: &jobs.ExpSpec{Samples: mcSamples, Seed: seed + int64(i)}}
	}
	out := make([]jobs.Spec, n)
	switch set {
	case "mc":
		for i := range out {
			out[i] = mc(i)
		}
	case "table2":
		for i := range out {
			out[i] = table2(i)
		}
	case "mega":
		// The paper's full characterization fan-out: every Table II cell
		// interleaved with fresh Monte-Carlo shards.
		for i := range out {
			if i%2 == 0 {
				out[i] = table2(i / 2)
			} else {
				out[i] = mc(i / 2)
			}
		}
	default:
		return nil, fmt.Errorf("unknown spec set %q (want mc|table2|mega)", set)
	}
	for i := range out {
		out[i].Engine = engine
	}
	return out, nil
}

// report is the machine-readable harness output (-o).
type report struct {
	Target       string    `json:"target"`
	Mode         string    `json:"mode"`
	Set          string    `json:"set"`
	Requested    int       `json:"requested"`
	Completed    int       `json:"completed"`
	Cached       int       `json:"cached"`
	Errors       int       `json:"errors"`
	DurationSec  float64   `json:"durationSec"`
	Throughput   float64   `json:"throughputJobsPerSec"`
	LatencyMsP50 float64   `json:"latencyMsP50"`
	LatencyMsP90 float64   `json:"latencyMsP90"`
	LatencyMsP99 float64   `json:"latencyMsP99"`
	LatencyMsMax float64   `json:"latencyMsMax"`
	ResultBytes  int64     `json:"resultBytes"`
	SigsPerMin   float64   `json:"signaturesPerMin,omitempty"`
	ErrorSamples []string  `json:"errorSamples,omitempty"`
	Started      time.Time `json:"started"`
}

func (r *report) print(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %s mode=%s set=%s\n", r.Target, r.Mode, r.Set)
	fmt.Fprintf(w, "  requests   %d (%d completed, %d cached, %d errors)\n", r.Requested, r.Completed, r.Cached, r.Errors)
	fmt.Fprintf(w, "  duration   %.2fs\n", r.DurationSec)
	fmt.Fprintf(w, "  throughput %.1f jobs/s\n", r.Throughput)
	fmt.Fprintf(w, "  latency    p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
		r.LatencyMsP50, r.LatencyMsP90, r.LatencyMsP99, r.LatencyMsMax)
	fmt.Fprintf(w, "  results    %d bytes\n", r.ResultBytes)
	if r.SigsPerMin > 0 {
		fmt.Fprintf(w, "  diagnosis  %.0f signatures/min\n", r.SigsPerMin)
	}
}

// finish folds the collected latencies into the report.
func (r *report) finish(lats []float64, elapsed time.Duration) {
	r.DurationSec = elapsed.Seconds()
	if r.DurationSec > 0 {
		r.Throughput = float64(r.Completed) / r.DurationSec
	}
	if len(lats) == 0 {
		return
	}
	sort.Float64s(lats)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	r.LatencyMsP50 = pick(0.50)
	r.LatencyMsP90 = pick(0.90)
	r.LatencyMsP99 = pick(0.99)
	r.LatencyMsMax = lats[len(lats)-1]
}

func (r *report) addError(msg string) {
	r.Errors++
	if len(r.ErrorSamples) < 5 {
		r.ErrorSamples = append(r.ErrorSamples, msg)
	}
}

// runJobs drives one POST /v1/jobs per spec with bounded in-flight
// concurrency and an optional rate limit, polling each job to done.
func runJobs(target string, specs []jobs.Spec, rate float64, inflight int, duration time.Duration) *report {
	if inflight <= 0 {
		inflight = 1
	}
	rep := &report{Target: target, Requested: len(specs), Started: time.Now().UTC()}
	client := &http.Client{}
	ctx := context.Background()

	var mu sync.Mutex
	var lats []float64

	// The ticker paces submissions; a nil channel means "no limit".
	var tick <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		tick = t.C
	}
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				cached, nbytes, err := runOneJob(ctx, client, target, specs[i])
				lat := time.Since(t0).Seconds() * 1e3
				mu.Lock()
				if err != nil {
					rep.addError(err.Error())
				} else {
					rep.Completed++
					rep.ResultBytes += nbytes
					if cached {
						rep.Cached++
					}
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	submitted := 0
	for i := range specs {
		if tick != nil {
			<-tick
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		idx <- i
		submitted++
	}
	close(idx)
	wg.Wait()
	rep.Requested = submitted
	rep.finish(lats, time.Since(start))
	return rep
}

// runOneJob submits one spec and drives it to completion.
func runOneJob(ctx context.Context, client *http.Client, target string, spec jobs.Spec) (cached bool, nbytes int64, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return false, 0, err
	}
	resp, err := client.Post(target+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return false, 0, rerr
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return false, 0, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var st jobs.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return false, 0, fmt.Errorf("submit: bad status body: %w", err)
	}
	cached = st.Cached
	for st.State != jobs.StateDone {
		switch st.State {
		case jobs.StateFailed, jobs.StateCanceled:
			return cached, 0, fmt.Errorf("job %s: %s: %s", st.ID, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			return cached, 0, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
		resp, err := client.Get(target + "/v1/jobs/" + st.ID)
		if err != nil {
			return cached, 0, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			return cached, 0, fmt.Errorf("poll %s: HTTP %d", st.ID, resp.StatusCode)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return cached, 0, fmt.Errorf("poll %s: %w", st.ID, err)
		}
	}
	resp2, err := client.Get(target + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return cached, 0, err
	}
	res, rerr := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if rerr != nil || resp2.StatusCode != http.StatusOK {
		return cached, 0, fmt.Errorf("result %s: HTTP %d", st.ID, resp2.StatusCode)
	}
	return cached, int64(len(res)), nil
}

// runDiag streams n dictionary-sampled signatures through one POST
// /v1/diagnose and measures end-to-end diagnosis throughput. Half the
// lines are verbatim entry signatures, half near-miss perturbations —
// the mix a BIST fail log replays at the fleet's diagnosis tier.
func runDiag(target, dictPath string, n int, seed int64, bin bool) *report {
	rep := &report{Target: target, Requested: n, Started: time.Now().UTC()}
	d, err := diag.Load(dictPath)
	if err != nil {
		rep.addError(err.Error())
		return rep
	}
	if len(d.Entries) == 0 {
		rep.addError("empty dictionary")
		return rep
	}
	rng := rand.New(rand.NewSource(seed))
	var body bytes.Buffer
	for i := 0; i < n; i++ {
		sig := d.Entries[rng.Intn(len(d.Entries))].Sig
		if i%2 == 1 {
			sig = diagtest.Perturb(rng, sig, i/2)
		}
		if bin {
			raw, err := sig.MarshalBinary()
			if err != nil {
				rep.addError(err.Error())
				return rep
			}
			fmt.Fprintf(&body, "{\"bin\":%q}\n", base64.StdEncoding.EncodeToString(raw))
			continue
		}
		js, err := json.Marshal(sig)
		if err != nil {
			rep.addError(err.Error())
			return rep
		}
		fmt.Fprintf(&body, "{\"sig\":%s}\n", js)
	}

	start := time.Now()
	resp, err := http.Post(target+"/v1/diagnose", "application/x-ndjson", &body)
	if err != nil {
		rep.addError(err.Error())
		return rep
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		rep.addError(fmt.Sprintf("diagnose: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data))))
		return rep
	}
	var lats []float64
	seen := map[int]bool{}
	dec := json.NewDecoder(resp.Body)
	for {
		var dl struct {
			Index     int             `json:"index"`
			Diagnosis json.RawMessage `json:"diagnosis"`
			Error     string          `json:"error"`
		}
		if err := dec.Decode(&dl); err != nil {
			if err != io.EOF {
				rep.addError(fmt.Sprintf("diagnose stream: %v", err))
			}
			break
		}
		if seen[dl.Index] {
			rep.addError(fmt.Sprintf("duplicate result for index %d", dl.Index))
			continue
		}
		seen[dl.Index] = true
		if dl.Error != "" {
			rep.addError(fmt.Sprintf("index %d: %s", dl.Index, dl.Error))
			continue
		}
		rep.Completed++
		rep.ResultBytes += int64(len(dl.Diagnosis))
		lats = append(lats, time.Since(start).Seconds()*1e3)
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			rep.addError(fmt.Sprintf("missing result for index %d", i))
		}
	}
	rep.finish(lats, time.Since(start))
	if rep.DurationSec > 0 {
		rep.SigsPerMin = float64(rep.Completed) / rep.DurationSec * 60
	}
	return rep
}

// runBatch drives all specs through one streaming POST /v1/batch.
func runBatch(target string, specs []jobs.Spec) *report {
	rep := &report{Target: target, Requested: len(specs), Started: time.Now().UTC()}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, s := range specs {
		if err := enc.Encode(s); err != nil {
			rep.addError(err.Error())
			return rep
		}
	}
	start := time.Now()
	resp, err := http.Post(target+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		rep.addError(err.Error())
		return rep
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		rep.addError(fmt.Sprintf("batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data))))
		return rep
	}
	var lats []float64
	seen := map[int]bool{}
	dec := json.NewDecoder(resp.Body)
	for {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			if err != io.EOF {
				rep.addError(fmt.Sprintf("batch stream: %v", err))
			}
			break
		}
		if seen[br.Index] {
			rep.addError(fmt.Sprintf("duplicate result for index %d", br.Index))
			continue
		}
		seen[br.Index] = true
		if br.State != cluster.BatchStateDone {
			rep.addError(fmt.Sprintf("index %d: %s", br.Index, br.Error))
			continue
		}
		rep.Completed++
		rep.ResultBytes += int64(len(br.Result))
		if br.Cached {
			rep.Cached++
		}
		lats = append(lats, time.Since(start).Seconds()*1e3)
	}
	for i := range specs {
		if !seen[i] {
			rep.addError(fmt.Sprintf("missing result for index %d", i))
		}
	}
	rep.finish(lats, time.Since(start))
	return rep
}
