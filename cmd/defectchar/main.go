// Command defectchar reproduces the paper's Table II: the minimal
// resistive-open defect resistance that causes a data retention fault in
// deep-sleep mode, per defect and case study, minimized over PVT.
//
// Usage:
//
//	defectchar                    # all 17 defects × 5 case studies, reduced grid
//	defectchar -full              # full 45-condition PVT grid (slow)
//	defectchar -defect 16 -cs 1   # a single Table II cell
//	defectchar -classify          # re-derive the §IV.B defect categories
//	defectchar -stability         # regulator loop-gain/phase-margin report
//	defectchar -csv               # emit CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"sramtest/internal/charac"
	"sramtest/internal/cli"
	"sramtest/internal/exp"
	"sramtest/internal/power"
	"sramtest/internal/process"
	"sramtest/internal/regulator"
	"sramtest/internal/report"
)

func main() {
	var (
		full      = flag.Bool("full", false, "sweep the full 45-condition PVT grid")
		defect    = flag.Int("defect", 0, "characterize a single defect (1..32)")
		cs        = flag.Int("cs", 0, "restrict to one case study (1..5)")
		classify  = flag.Bool("classify", false, "classify all 32 defects instead of characterizing")
		stability = flag.Bool("stability", false, "report the regulator's loop stability across PVT")
		csv       = flag.Bool("csv", false, "emit CSV")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	applyEngine := cli.Engine(flag.CommandLine)
	applyCriterion := cli.Criterion(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	if err := applyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "defectchar:", err)
		os.Exit(2)
	}
	if err := applyCriterion(); err != nil {
		fmt.Fprintln(os.Stderr, "defectchar:", err)
		os.Exit(2)
	}
	defer startProfile()()

	opt := charac.DefaultOptions()
	if !*full {
		opt.Conditions = charac.ReducedGrid()
	}

	if *classify {
		runClassify()
		return
	}
	if *stability {
		runStability()
		return
	}

	defects := regulator.DRFCandidates()
	if *defect != 0 {
		d := regulator.Defect(*defect)
		if !d.Valid() {
			fmt.Fprintf(os.Stderr, "defectchar: invalid defect %d\n", *defect)
			os.Exit(2)
		}
		defects = []regulator.Defect{d}
	}
	csList := charac.Table2CaseStudies()
	if *cs != 0 {
		if *cs < 1 || *cs > 5 {
			fmt.Fprintf(os.Stderr, "defectchar: invalid case study %d\n", *cs)
			os.Exit(2)
		}
		csList = csList[*cs-1 : *cs]
	}

	var results []charac.Result
	for _, d := range defects {
		for _, c := range csList {
			res, err := charac.CharacterizeDefect(d, c, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "defectchar:", err)
				os.Exit(1)
			}
			results = append(results, res)
			fmt.Fprintf(os.Stderr, "done %s/%s: %s\n", d, c.Name, res)
		}
	}
	t := exp.Table2Report(results)
	var err error
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "defectchar:", err)
		os.Exit(1)
	}
}

// runStability verifies the regulator design itself: loop gain, phase
// margin, crossover and fault-free DS-entry undershoot across PVT — the
// AC-analysis capability that drove the compensation design (DESIGN.md).
func runStability() {
	t := report.NewTable("Regulator loop stability (fault-free, per-VDD flow level)",
		"Condition", "Vreg", "DC gain", "crossover", "phase margin", "DS-entry min")
	for _, corner := range []process.Corner{process.FS, process.TT, process.SF} {
		for _, vdd := range process.Supplies() {
			for _, temp := range []float64{-30, 125} {
				cond := process.Condition{Corner: corner, VDD: vdd, TempC: temp}
				pm := power.NewModel(cond)
				r := regulator.Build(cond, pm.LoadFunc(), regulator.DefaultParams())
				r.SetVref(regulator.SelectFor(vdd))
				vreg, err := r.FaultFreeVreg()
				if err != nil {
					fmt.Fprintln(os.Stderr, "defectchar:", err)
					os.Exit(1)
				}
				mag, _, err := r.LoopGain([]float64{1})
				if err != nil {
					fmt.Fprintln(os.Stderr, "defectchar:", err)
					os.Exit(1)
				}
				pmDeg, fc, err := r.PhaseMargin()
				if err != nil {
					fmt.Fprintln(os.Stderr, "defectchar:", err)
					os.Exit(1)
				}
				wf, err := r.DSEntry(1e-3)
				if err != nil {
					fmt.Fprintln(os.Stderr, "defectchar:", err)
					os.Exit(1)
				}
				_, min := wf.Min("vddcc")
				t.AddRow(cond.String(),
					report.SI(vreg, "V"),
					fmt.Sprintf("%.1fdB", mag[0]),
					report.SI(fc, "Hz"),
					fmt.Sprintf("%.1f°", pmDeg),
					report.SI(min, "V"))
			}
		}
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "defectchar:", err)
		os.Exit(1)
	}
}

func runClassify() {
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	pm := power.NewModel(cond)
	r := regulator.Build(cond, pm.LoadFunc(), regulator.DefaultParams())
	r.SetVref(regulator.SelectFor(cond.VDD))
	t := report.NewTable("Defect classification (§IV.B categories)", "Defect", "Simulated", "Paper (Fig. 5)", "Description")
	for _, d := range regulator.All() {
		cat, err := r.Classify(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "defectchar:", err)
			os.Exit(1)
		}
		info := regulator.Lookup(d)
		t.AddRow(d.String(), cat.String(), info.Expected.String(), info.Desc)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "defectchar:", err)
		os.Exit(1)
	}
}
