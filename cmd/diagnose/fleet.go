package main

// Fleet-scale subcommands: serve a dictionary over the streaming
// /v1/diagnose endpoint, drive such an endpoint as a client, and verify
// the inverted index against the linear matcher on a real artifact.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"flag"

	"sramtest/internal/diag"
	"sramtest/internal/diag/diagtest"
	"sramtest/internal/diag/index"
	"sramtest/internal/jobs"
	"sramtest/internal/server"
	"sramtest/internal/store"
)

// loadIndex loads a dictionary artifact and builds its inverted index,
// reporting the shape on stderr. Shared by serve and verify.
func loadIndex(path string) (*diag.Dictionary, *index.Index) {
	d, err := diag.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	ix, err := index.New(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	st := ix.Stats()
	fmt.Fprintf(os.Stderr, "diagnose: %s: %d entries, %d signatures, %d buckets, %d residue\n",
		path, st.Entries, st.Groups, st.Buckets, st.Residue)
	return d, ix
}

// runServe stands up a diagnosis-only sramd node: the full HTTP API
// with the dictionary loaded, but a minimal job pool — the fleet path
// for "give every tester a diagnosis endpoint" without configuring a
// characterization daemon.
func runServe(args []string) {
	fs := flag.NewFlagSet("diagnose serve", flag.ExitOnError)
	dict := fs.String("dict", defaultDict, "dictionary artifact to serve")
	addr := fs.String("addr", ":8348", "listen address")
	fs.Parse(args)

	d, ix := loadIndex(*dict)
	st, err := store.Open("", 16)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	api := server.New(jobs.NewManager(jobs.Config{Workers: 1, QueueDepth: 4, Store: st}), st)
	ist := ix.Stats()
	api.Diag = ix
	api.DiagInfo = server.DiagInfo{
		Entries: ist.Entries, Flow: len(d.Flow), Indexed: true,
		Groups: ist.Groups, Buckets: ist.Buckets,
	}
	fmt.Fprintf(os.Stderr, "diagnose: serving POST /v1/diagnose on %s\n", *addr)
	if err := http.ListenAndServe(*addr, api); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

// diagLine is the shape both a node and a coordinator emit per input
// line, decoded loosely so the client works against either.
type diagLine struct {
	Index     int             `json:"index"`
	Diagnosis json.RawMessage `json:"diagnosis"`
	Node      string          `json:"node,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// streamLines derives a deterministic signature stream from the
// dictionary: verbatim entry signatures interleaved with the four
// near-miss Perturb flavors, encoded as JSON or binary-codec lines.
func streamLines(rng *rand.Rand, d *diag.Dictionary, n int, bin bool) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sig := d.Entries[rng.Intn(len(d.Entries))].Sig
		if i%2 == 1 {
			sig = diagtest.Perturb(rng, sig, i/2)
		}
		if bin {
			raw, err := sig.MarshalBinary()
			if err != nil {
				fmt.Fprintln(os.Stderr, "diagnose:", err)
				os.Exit(1)
			}
			lines = append(lines, fmt.Sprintf(`{"bin":%q}`, base64.StdEncoding.EncodeToString(raw)))
			continue
		}
		js, err := json.Marshal(sig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			os.Exit(1)
		}
		lines = append(lines, fmt.Sprintf(`{"sig":%s}`, js))
	}
	return lines
}

// runStream drives a /v1/diagnose endpoint (node or coordinator) with
// a synthetic BIST fail-log stream sampled from the dictionary and
// reports end-to-end signatures per minute. Exit status is non-zero
// when any line errors or goes unanswered.
func runStream(args []string) {
	fs := flag.NewFlagSet("diagnose stream", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8348", "sramd node or coordinator base URL")
	dict := fs.String("dict", defaultDict, "dictionary artifact to sample signatures from")
	n := fs.Int("n", 240, "signatures to stream")
	bin := fs.Bool("bin", false, "send compact binary-codec lines instead of JSON signatures")
	seed := fs.Int64("seed", 1, "sampling seed")
	fs.Parse(args)

	d, err := diag.Load(*dict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	if len(d.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "diagnose: empty dictionary")
		os.Exit(1)
	}
	lines := streamLines(rand.New(rand.NewSource(*seed)), d, *n, *bin)
	body := strings.Join(lines, "\n")

	start := time.Now()
	resp, err := http.Post(*url+"/v1/diagnose", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "diagnose: stream: HTTP %d: %s\n", resp.StatusCode, strings.TrimSpace(string(msg)))
		os.Exit(1)
	}
	answered := make([]bool, len(lines))
	errors, exact := 0, 0
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var dl diagLine
		if err := dec.Decode(&dl); err != nil {
			fmt.Fprintln(os.Stderr, "diagnose: stream:", err)
			os.Exit(1)
		}
		if dl.Index < 0 || dl.Index >= len(lines) || answered[dl.Index] {
			fmt.Fprintf(os.Stderr, "diagnose: stream: bad or duplicate index %d\n", dl.Index)
			os.Exit(1)
		}
		answered[dl.Index] = true
		if dl.Error != "" {
			errors++
			continue
		}
		var dg diag.Diagnosis
		if json.Unmarshal(dl.Diagnosis, &dg) == nil && dg.Exact {
			exact++
		}
	}
	elapsed := time.Since(start)
	missing := 0
	for _, ok := range answered {
		if !ok {
			missing++
		}
	}
	perMin := float64(*n-errors) / elapsed.Minutes()
	fmt.Printf("diagnose stream: %s\n", *url)
	fmt.Printf("  signatures  %d (%d exact, %d errors, %d missing)\n", *n, exact, errors, missing)
	fmt.Printf("  payload     %d bytes (%s lines)\n", len(body), lineKind(*bin))
	fmt.Printf("  duration    %.2fs\n", elapsed.Seconds())
	fmt.Printf("  throughput  %.0f signatures/min\n", perMin)
	if errors > 0 || missing > 0 {
		fmt.Fprintf(os.Stderr, "diagnose: FAIL: %d errored, %d unanswered of %d lines\n", errors, missing, *n)
		os.Exit(1)
	}
}

func lineKind(bin bool) string {
	if bin {
		return "binary-codec"
	}
	return "JSON"
}

// runVerify gates the inverted index against the linear matcher on a
// real dictionary artifact: byte-identical diagnoses over a mixed query
// stream (including the fallback shapes), then a throughput comparison
// over indexable queries. Exit status is non-zero on any divergence or
// when the speedup misses -min-speedup.
func runVerify(args []string) {
	fs := flag.NewFlagSet("diagnose verify", flag.ExitOnError)
	dict := fs.String("dict", defaultDict, "dictionary artifact to verify")
	queries := fs.Int("queries", 240, "queries per phase")
	seed := fs.Int64("seed", 1, "query-sampling seed")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless indexed/linear throughput ratio reaches this (0 = report only)")
	fs.Parse(args)

	d, ix := loadIndex(*dict)
	if len(d.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "diagnose: empty dictionary")
		os.Exit(1)
	}
	ist := ix.Stats()

	// Phase 1: byte-identity over the full query mix, fallback shapes
	// included — the same contract the equivalence tests gate.
	rng := rand.New(rand.NewSource(*seed))
	equiv := diagtest.Queries(rng, d, *queries)
	mismatches := 0
	for i, q := range equiv {
		want, err := json.Marshal(d.Match(q))
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			os.Exit(1)
		}
		got, err := json.Marshal(ix.Match(q))
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			os.Exit(1)
		}
		if !bytes.Equal(want, got) {
			mismatches++
			if mismatches <= 3 {
				fmt.Fprintf(os.Stderr, "diagnose: query %d: indexed diagnosis differs from linear\n  linear  %s\n  indexed %s\n", i, want, got)
			}
		}
	}

	// Phase 2: throughput over indexable queries only (entry signatures
	// and near-miss perturbations), so the comparison measures the index
	// rather than its deliberate linear escape hatch.
	timing := streamTiming(rand.New(rand.NewSource(*seed+1)), d, *queries)
	diag.ResetStats()
	t0 := time.Now()
	for _, q := range timing {
		ix.Match(q)
	}
	indexed := time.Since(t0)
	scanned := diag.Stats().MeanScanned()
	t0 = time.Now()
	for _, q := range timing {
		d.Match(q)
	}
	linear := time.Since(t0)
	speedup := linear.Seconds() / indexed.Seconds()

	fmt.Printf("diagnose verify: %s\n", *dict)
	fmt.Printf("  dictionary   %d entries, %d signatures, %d buckets, %d residue\n",
		ist.Entries, ist.Groups, ist.Buckets, ist.Residue)
	fmt.Printf("  equivalence  %d/%d queries byte-identical (fallback shapes included)\n",
		len(equiv)-mismatches, len(equiv))
	fmt.Printf("  linear       %d queries in %.3fs  (%.2f ms/query, %.0f q/s)\n",
		len(timing), linear.Seconds(), msPerQuery(linear, len(timing)), qps(linear, len(timing)))
	fmt.Printf("  indexed      %d queries in %.3fs  (%.2f ms/query, %.0f q/s)\n",
		len(timing), indexed.Seconds(), msPerQuery(indexed, len(timing)), qps(indexed, len(timing)))
	fmt.Printf("  speedup      %.1fx  (mean %.1f of %d entries scanned per query)\n",
		speedup, scanned, ist.Entries)

	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "diagnose: FAIL: %d of %d queries diverged\n", mismatches, len(equiv))
		os.Exit(1)
	}
	if *minSpeedup > 0 && speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "diagnose: FAIL: speedup %.1fx below required %.1fx\n", speedup, *minSpeedup)
		os.Exit(1)
	}
}

// streamTiming samples indexable queries: verbatim entry signatures
// interleaved with the four near-miss Perturb flavors.
func streamTiming(rng *rand.Rand, d *diag.Dictionary, n int) []diag.Signature {
	out := make([]diag.Signature, 0, n)
	for i := 0; i < n; i++ {
		sig := d.Entries[rng.Intn(len(d.Entries))].Sig
		if i%2 == 1 {
			sig = diagtest.Perturb(rng, sig, i/2)
		}
		out = append(out, sig)
	}
	return out
}

func msPerQuery(d time.Duration, n int) float64 { return d.Seconds() * 1e3 / float64(n) }

func qps(d time.Duration, n int) float64 { return float64(n) / d.Seconds() }
