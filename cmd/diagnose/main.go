// Command diagnose builds and applies the fault dictionary: given the
// failure signature the optimized March m-LZ flow observes on a failing
// device, which regulator defect (and roughly which resistance) caused
// it?
//
// Usage:
//
//	diagnose build [-o path] [-defects 1,3] [-cs 1,3] [-decades 1e5,1e6]
//	               [-base-only] [-workers N]
//	diagnose match -defect N -res R [-cs CS1-1] [-dict path]
//	diagnose adaptive -defect N -res R [-cs CS1-1] [-dict path]
//	diagnose stats [-dict path]
//	diagnose serve [-dict path] [-addr :8348]
//	diagnose stream [-url http://host:8348] [-dict path] [-n N] [-bin]
//	diagnose verify [-dict path] [-queries N] [-min-speedup X]
//
// build writes the versioned dictionary artifact (default
// results/diag-dictionary.json; -o - streams it to stdout, byte-identical
// to the sramd "diag" job). match simulates a device carrying the given
// defect, observes the three flow conditions and ranks the dictionary
// against the signature. adaptive continues where match stops: it greedily
// observes extra (VDD, Vref) conditions until the ambiguity set collapses.
// stats prints the EXP-DG ambiguity statistics of a dictionary.
//
// The fleet-scale subcommands serve and drive the streaming diagnosis
// endpoint: serve loads a dictionary behind POST /v1/diagnose (a
// diagnosis-only sramd node), stream replays a synthetic BIST fail-log
// stream against a node or coordinator and reports signatures/minute,
// and verify gates the inverted index against the linear matcher
// (byte-identity plus a throughput table) on a real artifact.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"flag"

	"sramtest/internal/cli"
	"sramtest/internal/diag"
	"sramtest/internal/exp"
	"sramtest/internal/jobs"
	"sramtest/internal/process"
	"sramtest/internal/regulator"
	"sramtest/internal/report"
)

const defaultDict = "results/diag-dictionary.json"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "match":
		runDiagnose(os.Args[2:], false)
	case "adaptive":
		runDiagnose(os.Args[2:], true)
	case "stats":
		runStats(os.Args[2:])
	case "serve":
		runServe(os.Args[2:])
	case "stream":
		runStream(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "diagnose: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  diagnose build    [-o path] [-defects 1,3] [-cs 1,3] [-decades 1e5,1e6] [-base-only] [-workers N]
  diagnose match    -defect N -res R [-cs CS1-1] [-dict path] [-workers N]
  diagnose adaptive -defect N -res R [-cs CS1-1] [-dict path] [-workers N]
  diagnose stats    [-dict path]
  diagnose serve    [-dict path] [-addr :8348]
  diagnose stream   [-url http://host:8348] [-dict path] [-n N] [-bin] [-seed S]
  diagnose verify   [-dict path] [-queries N] [-min-speedup X] [-seed S]
`)
}

// runBuild constructs the dictionary through the jobs runner, so the
// bytes written here are exactly the bytes the sramd "diag" job caches.
func runBuild(args []string) {
	fs := flag.NewFlagSet("diagnose build", flag.ExitOnError)
	out := fs.String("o", defaultDict, "output path (- = stdout)")
	defectsFlag := fs.String("defects", "", "comma-separated defect numbers (default: all 17 Table II defects)")
	csFlag := fs.String("cs", "", "comma-separated Table I case-study indices 1..5 (default: all)")
	decadesFlag := fs.String("decades", "", "comma-separated open resistances in Ω (default: 1 kΩ..100 MΩ decades)")
	baseOnly := fs.Bool("base-only", false, "skip the refiner's extra-condition signatures (~4× cheaper build)")
	points := fs.Int("points-per-decade", 0, "subdivide each decade pair into N log-spaced steps (fine fleet grid, interpolated build)")
	engineName := fs.String("engine", "", "simulation engine, recorded in the job spec (default spice)")
	applyWorkers := cli.Workers(fs)
	fs.Parse(args)
	applyWorkers()

	// The engine rides in the spec (not the process default) so the bytes
	// land under the same store key the sramd diag job would use.
	spec := jobs.Spec{Kind: jobs.KindDiag, Engine: *engineName, Diag: &jobs.DiagSpec{
		Defects:         parseInts(*defectsFlag, "defect"),
		CaseStudies:     parseInts(*csFlag, "case study"),
		Decades:         parseFloats(*decadesFlag),
		BaseOnly:        *baseOnly,
		PointsPerDecade: *points,
	}}
	norm, err := spec.Normalize()
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(2)
	}
	nconds := len(diag.DefaultFlowConditions())
	if !norm.Diag.BaseOnly {
		nconds += len(diag.ExtraConditions(diag.DefaultFlowConditions()))
	}
	ndec := len(norm.Diag.Decades)
	if norm.Diag.PointsPerDecade > 1 {
		ndec = len(diag.FineDecades(norm.Diag.Decades, norm.Diag.PointsPerDecade))
	}
	ncand := len(norm.Diag.Defects) * ndec * 2 * len(norm.Diag.CaseStudies)
	fmt.Fprintf(os.Stderr, "building dictionary: %d candidates × %d conditions...\n", ncand, nconds)

	b, err := jobs.Run(context.Background(), norm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			os.Exit(1)
		}
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	d, err := diag.Decode(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d entries, %d undetected escapes\n",
		*out, len(d.Entries), d.Undetected)
}

// runDiagnose simulates a device carrying the given candidate defect,
// observes the dictionary's flow conditions and matches — and, for the
// adaptive subcommand, refines with extra conditions.
func runDiagnose(args []string, adaptive bool) {
	name := "diagnose match"
	if adaptive {
		name = "diagnose adaptive"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	dict := fs.String("dict", defaultDict, "dictionary artifact (see diagnose build)")
	defectN := fs.Int("defect", 0, "injected defect number (required)")
	res := fs.Float64("res", 0, "injected open resistance in Ω (required)")
	csName := fs.String("cs", "CS1-1", "Table I case-study name sensitizing the defect")
	applyWorkers := cli.Workers(fs)
	applyEngine := cli.Engine(fs)
	fs.Parse(args)
	applyWorkers()
	if err := applyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(2)
	}

	defect := regulator.Defect(*defectN)
	if !defect.Valid() {
		fmt.Fprintf(os.Stderr, "diagnose: -defect %d invalid (want 1..32)\n", *defectN)
		os.Exit(2)
	}
	if *res <= 0 {
		fmt.Fprintln(os.Stderr, "diagnose: -res must be a positive resistance in Ω")
		os.Exit(2)
	}
	cs, ok := findCaseStudy(*csName)
	if !ok {
		fmt.Fprintf(os.Stderr, "diagnose: unknown case study %q (want one of %s)\n",
			*csName, strings.Join(caseStudyNames(), ", "))
		os.Exit(2)
	}

	d, err := diag.Load(*dict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	opt := d.Options()
	cand := diag.Candidate{Defect: defect, Res: *res, CS: cs}
	fmt.Fprintf(os.Stderr, "observing %s R=%.3gΩ (%s) at %d flow conditions...\n",
		defect, *res, cs.Name, len(d.Flow))
	sig, err := diag.BuildSignature(opt, cand)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	printSignature(sig)
	if sig.Pass() {
		fmt.Println("device passes every flow condition — nothing to diagnose (test escape)")
		return
	}

	dg := d.Match(sig)
	printDiagnosis(dg)
	if !adaptive {
		return
	}

	rr, err := d.Refine(sig, diag.SimObserver{Opt: opt, Cand: cand})
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	fmt.Println()
	if len(rr.Steps) == 0 {
		fmt.Println("adaptive refinement: no extra condition separates the survivors")
	}
	for i, st := range rr.Steps {
		fmt.Printf("refine step %d: observe %s: %d -> %d candidates\n",
			i+1, st.Cond, st.Before, st.After)
	}
	fmt.Println()
	if rr.Resolved {
		m := rr.Final[0]
		fmt.Printf("resolved: %s at R=%.3gΩ (%s)\n", m.Defect, m.Res, m.CS)
		return
	}
	fmt.Printf("unresolved: %d candidates remain\n", len(rr.Final))
	for _, m := range rr.Final {
		fmt.Printf("  %s R=%.3gΩ %s (distance %.3g)\n", m.Defect, m.Res, m.CS, m.Distance)
	}
}

func runStats(args []string) {
	fs := flag.NewFlagSet("diagnose stats", flag.ExitOnError)
	dict := fs.String("dict", defaultDict, "dictionary artifact (see diagnose build)")
	csv := fs.Bool("csv", false, "emit CSV")
	fs.Parse(args)

	d, err := diag.Load(*dict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	fmt.Printf("dictionary %s: %s at %s/%g°C, dwell %gs, %d flow + %d extra conditions\n",
		*dict, d.Test, d.Corner, d.TempC, d.Dwell, len(d.Flow), len(d.Extra))
	t := exp.DiagReport(exp.DiagStatsOf(d))
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

// printSignature renders the observed per-condition signatures.
func printSignature(sig diag.Signature) {
	fmt.Printf("observed %s signature (dwell %gs):\n", sig.Test, sig.Dwell)
	for _, c := range sig.Conds {
		if c.Pass {
			fmt.Printf("  %s: pass\n", c.Cond)
			continue
		}
		fmt.Printf("  %s: FAIL first at element %d op %d, elements %#b, %d miscompares, %d failing addresses (%d rows × %d cols)\n",
			c.Cond, c.Element, c.Op, c.Elements, c.Miscompares, c.Syn.Fails, c.Syn.Rows, c.Syn.Cols)
	}
}

// printDiagnosis renders the matcher's ranking and ambiguity set.
func printDiagnosis(dg diag.Diagnosis) {
	verdict := "nearest matches (no exact dictionary hit)"
	if dg.Exact {
		verdict = "exact dictionary hit"
	}
	fmt.Printf("\n%s; ambiguity set holds %d candidate(s)\n", verdict, len(dg.Ambiguity))
	t := report.NewTable("ranked matches", "rank", "defect", "R (Ω)", "case study", "distance")
	for i, m := range dg.Ranked {
		t.AddRow(strconv.Itoa(i+1), m.Defect.String(),
			strconv.FormatFloat(m.Res, 'g', 3, 64), m.CS,
			strconv.FormatFloat(m.Distance, 'g', 4, 64))
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
	if ds := dg.Defects(); len(ds) > 0 {
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = d.String()
		}
		fmt.Printf("ambiguous over defect(s): %s\n", strings.Join(names, ", "))
	}
}

// parseInts parses a comma-separated integer list; empty means default.
func parseInts(s, what string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "diagnose: bad %s %q\n", what, tok)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// parseFloats parses a comma-separated resistance list; empty means
// default.
func parseFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diagnose: bad resistance %q\n", tok)
			os.Exit(2)
		}
		out = append(out, r)
	}
	return out
}

func findCaseStudy(name string) (process.CaseStudy, bool) {
	for _, cs := range process.Table1CaseStudies() {
		if strings.EqualFold(cs.Name, name) {
			return cs, true
		}
	}
	return process.CaseStudy{}, false
}

func caseStudyNames() []string {
	all := process.Table1CaseStudies()
	out := make([]string, len(all))
	for i, cs := range all {
		out[i] = cs.Name
	}
	return out
}
