// Command spicesim is a small general-purpose circuit simulator over the
// library's SPICE-like netlist format — the same engine the reproduction
// uses for the regulator, exposed so users can characterize their own
// regulator designs ("the adopted methodology can be applied to any
// similar low-power SRAM design", paper §I).
//
// Usage:
//
//	spicesim -op circuit.sp                     # DC operating point
//	spicesim -dc V1:0:1.2:0.05 -probe out c.sp  # DC sweep of a source
//	spicesim -tran 1m -probe vreg,vddcc c.sp    # transient, CSV to stdout
//
// Netlist format (see internal/spice.Parse): R/C/V/I/S/M cards, .temp,
// .end; engineering suffixes f p n u m k meg g t.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"math"

	"sramtest/internal/num"
	"sramtest/internal/report"
	"sramtest/internal/spice"
)

func main() {
	var (
		doOP  = flag.Bool("op", false, "compute the DC operating point")
		dc    = flag.String("dc", "", "DC sweep: source:start:stop:step (e.g. V1:0:1.2:0.05)")
		tran  = flag.String("tran", "", "transient stop time (e.g. 1m)")
		dtMax = flag.String("dt", "", "transient max step (default tstop/200)")
		ac    = flag.String("ac", "", "AC sweep: source:fstart:fstop:points (e.g. VIN:1:1g:61)")
		probe = flag.String("probe", "", "comma-separated node names to output (default: all)")
		vcd   = flag.String("vcd", "", "with -tran: write the waveform as VCD to this file instead of CSV")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "spicesim: exactly one netlist file required")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ckt, err := spice.Parse(f)
	if err != nil {
		fatal(err)
	}
	if err := ckt.Check(); err != nil {
		fatal(err)
	}

	probes := probeNodes(ckt, *probe)

	switch {
	case *dc != "":
		runDC(ckt, *dc, probes)
	case *tran != "":
		runTran(ckt, *tran, *dtMax, probes, *vcd)
	case *ac != "":
		runAC(ckt, *ac, probes)
	default:
		_ = doOP // -op is the default analysis
		runOP(ckt, probes)
	}
}

// runAC sweeps a small-signal transfer function and emits CSV of
// magnitude (dB) and phase (deg) per probe node.
func runAC(ckt *spice.Circuit, spec string, probes []string) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		fatal(fmt.Errorf("-ac wants source:fstart:fstop:points, got %q", spec))
	}
	el, ok := ckt.Element(parts[0])
	if !ok {
		fatal(fmt.Errorf("no element %q", parts[0]))
	}
	src, ok := el.(*spice.VSource)
	if !ok {
		fatal(fmt.Errorf("%q is not a voltage source", parts[0]))
	}
	fstart, err := spice.ParseValue(parts[1])
	if err != nil {
		fatal(err)
	}
	fstop, err := spice.ParseValue(parts[2])
	if err != nil {
		fatal(err)
	}
	points, err := spice.ParseValue(parts[3])
	if err != nil || points < 2 {
		fatal(fmt.Errorf("bad point count %q", parts[3]))
	}
	op, err := spice.OP(ckt, nil, spice.DefaultOptions())
	if err != nil {
		fatal(fmt.Errorf("operating point: %w", err))
	}
	an, err := spice.NewAC(ckt, op, spice.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	hdr := []string{"freq"}
	for _, p := range probes {
		hdr = append(hdr, p+"_dB", p+"_deg")
	}
	fmt.Println(strings.Join(hdr, ","))
	for _, f := range num.Logspace(fstart, fstop, int(points)) {
		sol, err := an.Solve(src, f)
		if err != nil {
			fatal(err)
		}
		row := []string{fmt.Sprintf("%.6g", f)}
		for _, p := range probes {
			h := sol.VName(p)
			mag := 20 * math.Log10(math.Hypot(real(h), imag(h)))
			ph := math.Atan2(imag(h), real(h)) * 180 / math.Pi
			row = append(row, fmt.Sprintf("%.4g", mag), fmt.Sprintf("%.4g", ph))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spicesim:", err)
	os.Exit(1)
}

func probeNodes(ckt *spice.Circuit, arg string) []string {
	if arg == "" {
		return ckt.NodeNames()
	}
	var out []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if _, ok := ckt.FindNode(n); !ok {
			fatal(fmt.Errorf("unknown probe node %q", n))
		}
		out = append(out, n)
	}
	return out
}

func runOP(ckt *spice.Circuit, probes []string) {
	sol, err := spice.OP(ckt, nil, spice.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("Operating point (T=%g°C)", ckt.Temp), "Node", "Voltage")
	for _, n := range probes {
		t.AddRow(n, report.SI(sol.VName(n), "V"))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func runDC(ckt *spice.Circuit, spec string, probes []string) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		fatal(fmt.Errorf("-dc wants source:start:stop:step, got %q", spec))
	}
	el, ok := ckt.Element(parts[0])
	if !ok {
		fatal(fmt.Errorf("no element %q", parts[0]))
	}
	src, ok := el.(*spice.VSource)
	if !ok {
		fatal(fmt.Errorf("%q is not a voltage source", parts[0]))
	}
	var start, stop, step float64
	for i, dst := range []*float64{&start, &stop, &step} {
		v, err := spice.ParseValue(parts[i+1])
		if err != nil {
			fatal(err)
		}
		*dst = v
	}
	if step <= 0 || stop < start {
		fatal(fmt.Errorf("bad sweep range"))
	}
	n := int((stop-start)/step) + 1
	values := num.Linspace(start, stop, n)

	fmt.Printf("%s,%s\n", parts[0], strings.Join(probes, ","))
	var warm *spice.Solution
	for _, v := range values {
		src.V = v
		sol, err := spice.OP(ckt, warm, spice.DefaultOptions())
		if err != nil {
			fatal(fmt.Errorf("sweep point %g: %w", v, err))
		}
		warm = sol
		row := make([]string, 0, len(probes)+1)
		row = append(row, fmt.Sprintf("%g", v))
		for _, p := range probes {
			row = append(row, fmt.Sprintf("%.6g", sol.VName(p)))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

func runTran(ckt *spice.Circuit, tstop, dtmax string, probes []string, vcdPath string) {
	ts, err := spice.ParseValue(tstop)
	if err != nil {
		fatal(err)
	}
	dt := ts / 200
	if dtmax != "" {
		if dt, err = spice.ParseValue(dtmax); err != nil {
			fatal(err)
		}
	}
	init, err := spice.OP(ckt, nil, spice.DefaultOptions())
	if err != nil {
		fatal(fmt.Errorf("initial operating point: %w", err))
	}
	rec := make([]spice.NodeID, len(probes))
	for i, p := range probes {
		rec[i], _ = ckt.FindNode(p)
	}
	wf, _, err := spice.Tran(ckt, init, spice.TranSpec{TStop: ts, DtMax: dt, Record: rec}, spice.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := wf.WriteVCD(f, "spicesim"); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", vcdPath)
		return
	}
	fmt.Printf("time,%s\n", strings.Join(probes, ","))
	for i, tm := range wf.Time {
		row := make([]string, 0, len(probes)+1)
		row = append(row, fmt.Sprintf("%.6g", tm))
		for k := range probes {
			row = append(row, fmt.Sprintf("%.6g", wf.Signals[k][i]))
		}
		fmt.Println(strings.Join(row, ","))
	}
}
