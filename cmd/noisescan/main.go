// Command noisescan measures the flip-probability curve P(flip) versus
// the deep-sleep rail V_DD_DS under the accelerated stochastic noise
// ensemble — the EXP-NS experiment behind the dynamic retention
// criterion (internal/noisescan, DESIGN.md §5.14). The scan brackets the
// static DRV_DS of a Table I case study and reports how far thermal-like
// disturbances tighten the retention threshold beyond the paper's static
// criterion.
//
// Usage:
//
//	noisescan [-cs N] [-points P] [-runs R] [-sigma A] [-seed S] [-csv]
//	noisescan -cluster URL [-shards K]   # fan shards out over POST /v1/batch
//
// Local runs scan in-process on the sweep engine; -cluster sends K shard
// jobs through an sramd node or coordinator's batch endpoint, merges the
// returned partials with noisescan.MergePartials, and renders the same
// tables. Both paths are byte-identical to the daemon's own noisescan
// job output at any worker count and any shard count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"sramtest/internal/cli"
	"sramtest/internal/cluster"
	"sramtest/internal/engine"
	"sramtest/internal/jobs"
	"sramtest/internal/noisescan"
	"sramtest/internal/report"
)

func main() {
	var (
		cs         = flag.Int("cs", noisescan.DefaultCaseStudy, "Table I case study (1..5)")
		points     = flag.Int("points", noisescan.DefaultPoints, "rail points on the scan grid")
		below      = flag.Float64("below", noisescan.DefaultBelow, "scan start below the static DRV (V)")
		above      = flag.Float64("above", noisescan.DefaultAbove, "scan end above the static DRV (V)")
		runs       = flag.Int("runs", 0, "ensemble members per rail point (0 = engine default)")
		sigma      = flag.Float64("sigma", 0, "accelerated noise amplitude (A, 0 = engine default)")
		seed       = flag.Int64("seed", 0, "RNG seed (0 = engine default)")
		csv        = flag.Bool("csv", false, "emit CSV")
		clusterURL = flag.String("cluster", "", "sramd node or coordinator base URL; shard the scan over POST /v1/batch")
		shards     = flag.Int("shards", 2, "shard jobs to fan out in -cluster mode")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	defer startProfile()()

	noise := engine.DefaultNoiseParams()
	if *runs > 0 {
		noise.Runs = *runs
	}
	if *sigma > 0 {
		noise.Sigma = *sigma
	}
	if *seed != 0 {
		noise.Seed = *seed
	}
	p := noisescan.Params{
		CaseStudy: *cs,
		Points:    *points,
		Below:     *below,
		Above:     *above,
		Noise:     noise,
	}

	var (
		res noisescan.Result
		err error
	)
	if *clusterURL != "" {
		res, err = clusterScan(*clusterURL, *shards, p)
	} else {
		res, err = noisescan.Scan(context.Background(), p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "noisescan:", err)
		os.Exit(1)
	}
	emit(noisescan.Summary(res), *csv)
	emit(noisescan.Curve(res), *csv)
}

func emit(t *report.Table, csv bool) {
	var err error
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "noisescan:", err)
		os.Exit(1)
	}
	fmt.Println()
}

// clusterScan fans K shard jobs out through the batch endpoint and
// merges the partials. Shard s owns the rail points i ≡ s (mod K), and
// every point's ensemble draws the same reserved criterion streams, so
// the merged result is byte-identical to a local single-shard run with
// the same parameters — the cluster only changes where the solves run.
func clusterScan(target string, shards int, p noisescan.Params) (noisescan.Result, error) {
	if shards < 2 {
		return noisescan.Result{}, fmt.Errorf("-shards must be >= 2 in cluster mode (one shard is a plain job)")
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for s := 0; s < shards; s++ {
		spec := jobs.Spec{
			Kind: jobs.KindNoiseScan,
			NoiseScan: &jobs.NoiseScanSpec{
				CaseStudy: p.CaseStudy, Points: p.Points,
				Below: p.Below, Above: p.Above,
				Shards: shards, Shard: s,
			},
			Noise: &jobs.NoiseSpec{
				Runs: p.Noise.Runs, Sigma: p.Noise.Sigma,
				SlotDt: p.Noise.SlotDt, Window: p.Noise.Window,
				PFail: p.Noise.PFail, Tol: p.Noise.Tol,
				MaxTighten: p.Noise.MaxTighten, Seed: p.Noise.Seed,
			},
		}
		if err := enc.Encode(spec); err != nil {
			return noisescan.Result{}, err
		}
	}
	resp, err := http.Post(target+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		return noisescan.Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return noisescan.Result{}, fmt.Errorf("batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	parts := make([]noisescan.Partial, shards)
	seen := make([]bool, shards)
	dec := json.NewDecoder(resp.Body)
	for {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			if err == io.EOF {
				break
			}
			return noisescan.Result{}, fmt.Errorf("batch stream: %w", err)
		}
		if br.Index < 0 || br.Index >= shards || seen[br.Index] {
			return noisescan.Result{}, fmt.Errorf("batch stream: unexpected result index %d", br.Index)
		}
		if br.State != cluster.BatchStateDone {
			return noisescan.Result{}, fmt.Errorf("shard %d: %s", br.Index, br.Error)
		}
		if err := json.Unmarshal(br.Result, &parts[br.Index]); err != nil {
			return noisescan.Result{}, fmt.Errorf("shard %d: bad partial: %w", br.Index, err)
		}
		seen[br.Index] = true
	}
	for s, ok := range seen {
		if !ok {
			return noisescan.Result{}, fmt.Errorf("batch stream ended without shard %d", s)
		}
	}
	return noisescan.MergePartials(parts)
}
