// Command powersim reproduces the paper's §IV.B static power observation
// (EXP-P1): deep-sleep savings versus idle ACT mode across the PVT grid,
// for a healthy regulator and for the worst power-category defect
// (Vreg stuck at VDD).
//
// Usage:
//
//	powersim          # full 45-condition study
//	powersim -hot     # only the 125°C conditions (where static power matters)
//	powersim -csv     # emit CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"sramtest/internal/exp"
	"sramtest/internal/process"
)

func main() {
	var (
		hot = flag.Bool("hot", false, "only 125°C conditions")
		csv = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	conds := process.Grid()
	if *hot {
		var filtered []process.Condition
		for _, c := range conds {
			if c.TempC >= 125 {
				filtered = append(filtered, c)
			}
		}
		conds = filtered
	}
	rows := exp.PowerSavings(conds)
	t := exp.PowerReport(rows)
	var err error
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "powersim:", err)
		os.Exit(1)
	}
	worst := exp.WorstDefectSavingsAtHighTemp(rows)
	fmt.Printf("\nworst Vreg=VDD savings at 125°C: %.1f%% (paper §IV.B: still over 30%%)\n", worst*100)
}
