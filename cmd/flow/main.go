// Command flow reproduces the paper's Table III: measure every defect's
// detectability at all 12 (VDD, Vref) test conditions and derive the
// optimized March m-LZ flow, then report the test-time reduction.
//
// Usage:
//
//	flow                  # full measurement (17 defects × 12 conditions)
//	flow -defects 1,3,4,16  # restrict to a defect subset (faster)
//	flow -no-vdd-constraint # drop the one-iteration-per-supply rule
//	flow -time              # only print the test-time accounting
//	flow -csv               # emit CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sramtest/internal/cell"
	"sramtest/internal/exp"
	"sramtest/internal/process"
	"sramtest/internal/regulator"
	"sramtest/internal/report"
	"sramtest/internal/sweep"
	"sramtest/internal/testflow"
)

func main() {
	var (
		defectsFlag = flag.String("defects", "", "comma-separated defect numbers (default: all 17 Table II defects)")
		noVDD       = flag.Bool("no-vdd-constraint", false, "allow flows that skip supply voltages")
		timeOnly    = flag.Bool("time", false, "print only the test-time accounting for the paper's 3-iteration flow")
		csv         = flag.Bool("csv", false, "emit CSV")
		workers     = flag.Int("workers", 0, "parallel sweep workers (0 = $SRAMTEST_WORKERS or GOMAXPROCS)")
	)
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	if *timeOnly {
		flow := testflow.Flow{Iterations: make([]testflow.Iteration, 3), Candidates: 12}
		printTime(exp.TestTime(flow))
		return
	}

	mopt := testflow.DefaultMeasureOptions()
	if *defectsFlag != "" {
		var ds []regulator.Defect
		for _, tok := range strings.Split(*defectsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || !regulator.Defect(n).Valid() {
				fmt.Fprintf(os.Stderr, "flow: bad defect %q\n", tok)
				os.Exit(2)
			}
			ds = append(ds, regulator.Defect(n))
		}
		mopt.Defects = ds
	}

	fmt.Fprintf(os.Stderr, "measuring %d defects × 12 test conditions at %s/%g°C...\n",
		len(mopt.Defects), mopt.Corner, mopt.TempC)
	sens, err := testflow.Measure(mopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}

	cond := process.Condition{Corner: mopt.Corner, VDD: 1.1, TempC: mopt.TempC}
	worst := cell.New(mopt.CS.Variation, cond).DRV1()
	oopt := testflow.DefaultOptimizeOptions(worst)
	oopt.RequireAllVDD = !*noVDD
	flow := testflow.Optimize(sens, oopt)

	res := exp.Table3Result{WorstDRV: worst, Sensitivities: sens, Flow: flow}
	t := exp.Table3Report(res)
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}
	fmt.Println()
	if len(flow.Uncoverable) > 0 {
		fmt.Printf("defects undetectable at every eligible condition: %v\n", flow.Uncoverable)
	}

	// Sensitivity matrix (one row per condition).
	st := report.NewTable("Measured sensitivities (min DRF resistance per condition)",
		append([]string{"Condition", "fault-free Vreg"}, defectNames(mopt.Defects)...)...)
	for _, s := range sens {
		row := []string{s.Cond.String(), report.SI(s.FaultFree, "V")}
		for _, d := range mopt.Defects {
			r := s.MinRes[d]
			cell := "-"
			if r == r && !isInf(r) { // not NaN, not Inf
				cell = report.SI(r, "Ω")
			}
			row = append(row, cell)
		}
		st.AddRow(row...)
	}
	if !*csv {
		_ = st.Write(os.Stdout)
		fmt.Println()
	}
	printTime(exp.TestTime(flow))
}

func defectNames(ds []regulator.Defect) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

func isInf(v float64) bool { return v > 1e300 }

func printTime(r exp.TestTimeResult) {
	fmt.Printf("March m-LZ length: %dN+%d (paper: 5N+4)\n", r.PerCell, r.Constant)
	fmt.Printf("single run on 4K words: %s\n", report.SI(r.SingleRun, "s"))
	fmt.Printf("optimized flow:  %s\n", report.SI(r.Optimized, "s"))
	fmt.Printf("exhaustive flow: %s\n", report.SI(r.Exhaustive, "s"))
	fmt.Printf("test-time reduction: %.0f%% (paper: 75%%)\n", r.Reduction*100)
}
