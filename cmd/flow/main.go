// Command flow reproduces the paper's Table III: measure every defect's
// detectability at all 12 (VDD, Vref) test conditions and derive the
// optimized March m-LZ flow, then report the test-time reduction.
//
// Usage:
//
//	flow                  # full measurement (17 defects × 12 conditions)
//	flow -defects 1,3,4,16  # restrict to a defect subset (faster)
//	flow -no-vdd-constraint # drop the one-iteration-per-supply rule
//	flow -time              # only print the test-time accounting
//	flow -csv               # emit CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sramtest/internal/cell"
	"sramtest/internal/cli"
	"sramtest/internal/exp"
	"sramtest/internal/process"
	"sramtest/internal/regulator"
	"sramtest/internal/testflow"
)

func main() {
	var (
		defectsFlag = flag.String("defects", "", "comma-separated defect numbers (default: all 17 Table II defects)")
		noVDD       = flag.Bool("no-vdd-constraint", false, "allow flows that skip supply voltages")
		timeOnly    = flag.Bool("time", false, "print only the test-time accounting for the paper's 3-iteration flow")
		csv         = flag.Bool("csv", false, "emit CSV")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	applyEngine := cli.Engine(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	if err := applyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(2)
	}
	defer startProfile()()

	if *timeOnly {
		flow := testflow.Flow{Iterations: make([]testflow.Iteration, 3), Candidates: 12}
		printTime(exp.TestTime(flow))
		return
	}

	mopt := testflow.DefaultMeasureOptions()
	if *defectsFlag != "" {
		var ds []regulator.Defect
		for _, tok := range strings.Split(*defectsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || !regulator.Defect(n).Valid() {
				fmt.Fprintf(os.Stderr, "flow: bad defect %q\n", tok)
				os.Exit(2)
			}
			ds = append(ds, regulator.Defect(n))
		}
		mopt.Defects = ds
	}

	fmt.Fprintf(os.Stderr, "measuring %d defects × 12 test conditions at %s/%g°C...\n",
		len(mopt.Defects), mopt.Corner, mopt.TempC)
	sens, err := testflow.Measure(mopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}

	cond := process.Condition{Corner: mopt.Corner, VDD: 1.1, TempC: mopt.TempC}
	worst := cell.New(mopt.CS.Variation, cond).DRV1()
	oopt := testflow.DefaultOptimizeOptions(worst)
	oopt.RequireAllVDD = !*noVDD
	flow := testflow.Optimize(sens, oopt)

	res := exp.Table3Result{WorstDRV: worst, Sensitivities: sens, Flow: flow}
	t := exp.Table3Report(res)
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}
	fmt.Println()
	if len(flow.Uncoverable) > 0 {
		fmt.Printf("defects undetectable at every eligible condition: %v\n", flow.Uncoverable)
	}

	// Sensitivity matrix (one row per condition).
	if !*csv {
		_ = exp.SensitivityReport(sens, mopt.Defects).Write(os.Stdout)
		fmt.Println()
	}
	printTime(exp.TestTime(flow))
}

func printTime(r exp.TestTimeResult) {
	if err := exp.WriteTestTime(os.Stdout, r); err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}
}
