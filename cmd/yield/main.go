// Command yield estimates the rare-event retention-failure probability
// P(DRV_DS > Vref) of the 6T cell under local Vth variation — the
// manufacturing-yield question behind the paper's DRV analysis, pushed
// to tail depths (5-6σ) where naive Monte-Carlo would need billions of
// solves (internal/yield, DESIGN.md §5.11).
//
// Usage:
//
//	yield [-n N] [-seed S] [-vref V] [-method is|blockade] [-csv]
//	yield -cluster URL [-shards K]   # fan shards out over POST /v1/batch
//
// Local runs estimate in-process on the sweep engine; -cluster sends K
// shard jobs through an sramd node or coordinator's batch endpoint,
// merges the returned partials with yield.MergePartials, and renders
// the same table. Both paths are byte-identical to the daemon's own
// yield job output at any worker count and any shard count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"sramtest/internal/cli"
	"sramtest/internal/cluster"
	"sramtest/internal/jobs"
	"sramtest/internal/process"
	"sramtest/internal/report"
	"sramtest/internal/yield"
)

func main() {
	var (
		n          = flag.Int("n", yield.DefaultSamples, "importance/blockade samples")
		seed       = flag.Int64("seed", yield.DefaultSeed, "RNG seed")
		vref       = flag.Float64("vref", yield.DefaultVref, "retention reference voltage (V)")
		method     = flag.String("method", "", `estimator: "is" (default) or "blockade"`)
		csv        = flag.Bool("csv", false, "emit CSV")
		clusterURL = flag.String("cluster", "", "sramd node or coordinator base URL; shard the estimate over POST /v1/batch")
		shards     = flag.Int("shards", 2, "shard jobs to fan out in -cluster mode")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	defer startProfile()()

	var (
		res yield.Result
		err error
	)
	if *clusterURL != "" {
		res, err = clusterEstimate(*clusterURL, *shards, *n, *seed, *vref, *method)
	} else {
		res, err = localEstimate(*n, *seed, *vref, *method)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	emit(yield.Report(res), *csv)
}

func emit(t *report.Table, csv bool) {
	var err error
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	fmt.Println()
}

// localEstimate runs the whole estimate in-process. The condition is
// cmd/drv's fixed Monte-Carlo condition — the retention-worst PVT point
// the daemon's yield job also pins.
func localEstimate(n int, seed int64, vref float64, method string) (yield.Result, error) {
	est, err := yield.New(method)
	if err != nil {
		return yield.Result{}, err
	}
	return est.Estimate(context.Background(), yield.Params{
		Cond:    process.Condition{Corner: process.FS, VDD: 1.1, TempC: 125},
		Vref:    vref,
		Samples: n,
		Seed:    seed,
	})
}

// clusterEstimate fans K shard jobs out through the batch endpoint and
// merges the partials. Shard s owns the sample chunks c ≡ s (mod K), so
// the merged result is byte-identical to a local single-shard run with
// the same parameters — the cluster only changes where the solves run.
func clusterEstimate(target string, shards, n int, seed int64, vref float64, method string) (yield.Result, error) {
	if shards < 2 {
		return yield.Result{}, fmt.Errorf("-shards must be >= 2 in cluster mode (one shard is a plain job)")
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for s := 0; s < shards; s++ {
		spec := jobs.Spec{Kind: jobs.KindYield, Yield: &jobs.YieldSpec{
			Samples: n, Seed: seed, Vref: vref, Method: method,
			Shards: shards, Shard: s,
		}}
		if err := enc.Encode(spec); err != nil {
			return yield.Result{}, err
		}
	}
	resp, err := http.Post(target+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		return yield.Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return yield.Result{}, fmt.Errorf("batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	parts := make([]yield.Partial, shards)
	seen := make([]bool, shards)
	dec := json.NewDecoder(resp.Body)
	for {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			if err == io.EOF {
				break
			}
			return yield.Result{}, fmt.Errorf("batch stream: %w", err)
		}
		if br.Index < 0 || br.Index >= shards || seen[br.Index] {
			return yield.Result{}, fmt.Errorf("batch stream: unexpected result index %d", br.Index)
		}
		if br.State != cluster.BatchStateDone {
			return yield.Result{}, fmt.Errorf("shard %d: %s", br.Index, br.Error)
		}
		if err := json.Unmarshal(br.Result, &parts[br.Index]); err != nil {
			return yield.Result{}, fmt.Errorf("shard %d: bad partial: %w", br.Index, err)
		}
		seen[br.Index] = true
	}
	for s, ok := range seen {
		if !ok {
			return yield.Result{}, fmt.Errorf("batch stream ended without shard %d", s)
		}
	}
	return yield.MergePartials(parts)
}
