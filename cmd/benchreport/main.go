// Command benchreport turns `go test -bench` output into a
// machine-readable JSON report, optionally comparing it against a
// checked-in baseline run (benchmarks/baseline.txt).
//
// Usage:
//
//	go test -bench=. -benchmem ... | benchreport -o BENCH_5.json
//	benchreport -in new.txt -baseline benchmarks/baseline.txt -o BENCH_5.json
//	benchreport ... -check BenchmarkTable2,BenchmarkDictionaryBuild -min-alloc-ratio 2
//
// Repeated runs of the same benchmark (-count=N) are averaged. When a
// baseline is given, each benchmark that appears in both runs gets a
// delta block with the time and allocation ratios (baseline/new, so >1
// means the new run is better). -check names benchmarks whose
// allocation ratio must meet -min-alloc-ratio, turning the report into a
// CI gate: allocs/op is machine-independent, so unlike wall-clock ratios
// it is safe to enforce across runner generations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is the aggregated result of one benchmark across repetitions.
type Bench struct {
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// Delta compares a benchmark against its baseline. Ratios are
// baseline/new: 2.0 means twice as fast (or half the allocations).
type Delta struct {
	Baseline   Bench   `json:"baseline"`
	TimeRatio  float64 `json:"time_ratio"`
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the BENCH_5.json schema.
type Report struct {
	Benchmarks map[string]Bench  `json:"benchmarks"`
	Deltas     map[string]Delta  `json:"deltas,omitempty"`
	Env        map[string]string `json:"env,omitempty"` // goos/goarch/cpu headers
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse reads `go test -bench` output, averaging repeated runs.
func parse(r io.Reader) (map[string]Bench, map[string]string, error) {
	sums := map[string]*Bench{}
	env := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && (k == "goos" || k == "goarch" || k == "cpu" || k == "pkg") {
			env[k] = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		b := sums[name]
		if b == nil {
			b = &Bench{Metrics: map[string]float64{}}
			sums[name] = b
		}
		b.Runs++
		// The tail is "<value> <unit>" pairs.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp += v
			case "B/op":
				b.BytesPerOp += v
			case "allocs/op":
				b.AllocsPerOp += v
			default:
				b.Metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := map[string]Bench{}
	for name, b := range sums {
		n := float64(b.Runs)
		b.NsPerOp /= n
		b.BytesPerOp /= n
		b.AllocsPerOp /= n
		for k := range b.Metrics {
			b.Metrics[k] /= n
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		out[name] = *b
	}
	return out, env, nil
}

func parseFile(path string) (map[string]Bench, map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	var (
		in       = flag.String("in", "", "bench output file (default: stdin)")
		baseline = flag.String("baseline", "", "baseline bench output to compare against")
		out      = flag.String("o", "", "write the JSON report here (default: stdout)")
		check    = flag.String("check", "", "comma-separated benchmarks whose alloc_ratio must meet -min-alloc-ratio")
		minRatio = flag.Float64("min-alloc-ratio", 2, "required baseline/new allocs-per-op ratio for -check benchmarks")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	var err error
	rep := Report{}
	if *in != "" {
		rep.Benchmarks, rep.Env, err = parseFile(*in)
	} else {
		rep.Benchmarks, rep.Env, err = parse(src)
	}
	if err != nil {
		fatal("parse: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal("no benchmark lines found in input")
	}

	if *baseline != "" {
		base, _, err := parseFile(*baseline)
		if err != nil {
			fatal("baseline: %v", err)
		}
		rep.Deltas = map[string]Delta{}
		for name, b := range rep.Benchmarks {
			prev, ok := base[name]
			if !ok {
				continue
			}
			d := Delta{Baseline: prev}
			if b.NsPerOp > 0 {
				d.TimeRatio = prev.NsPerOp / b.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				d.AllocRatio = prev.AllocsPerOp / b.AllocsPerOp
			}
			rep.Deltas[name] = d
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		err = os.WriteFile(*out, buf, 0o644)
	} else {
		_, err = os.Stdout.Write(buf)
	}
	if err != nil {
		fatal("write: %v", err)
	}

	if *check != "" {
		if rep.Deltas == nil {
			fatal("-check requires -baseline")
		}
		failed := false
		for _, name := range strings.Split(*check, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			d, ok := rep.Deltas[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchreport: %s missing from run or baseline\n", name)
				failed = true
				continue
			}
			if d.AllocRatio < *minRatio {
				fmt.Fprintf(os.Stderr, "benchreport: %s alloc_ratio %.2f < required %.2f\n", name, d.AllocRatio, *minRatio)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchreport: %s alloc_ratio %.2fx, time_ratio %.2fx\n", name, d.AllocRatio, d.TimeRatio)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
