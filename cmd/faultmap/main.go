// Command faultmap generates array-scale correlated fault-map corpora
// of the 4K×64 SRAM and evaluates March-test coverage against them —
// the statistical complement of the one-fault-at-a-time flows
// (internal/faultmap, DESIGN.md §5.12, EXPERIMENTS.md EXP-FM).
//
// Usage:
//
//	faultmap [-maps N] [-seed S] [-vref V] [-vdd V] [-defect P]
//	         [-tests "March m-LZ,March C-"] [-random OPS] [-engine march|bist]
//	         [-csv]                      # coverage report (EXP-FM tables)
//	faultmap -dump [...]                 # corpus generation: one map JSON per line
//	faultmap -rails "0.36,0.40,0.44" [...] # coverage vs retention rail
//	faultmap -cluster URL [-shards K] [...] # fan shards out over POST /v1/batch
//
// Local runs evaluate in-process on the sweep engine; -cluster sends K
// shard jobs through an sramd node or coordinator's batch endpoint,
// merges the returned partials with faultmap.MergePartials, and renders
// the same tables. Both paths are byte-identical to the daemon's own
// faultmap job output at any worker count and any shard count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"sramtest/internal/cli"
	"sramtest/internal/cluster"
	"sramtest/internal/faultmap"
	"sramtest/internal/jobs"
	"sramtest/internal/march"
	"sramtest/internal/process"
	"sramtest/internal/report"
)

func main() {
	var (
		maps       = flag.Int("maps", faultmap.DefaultMaps, "corpus size (total across all shards)")
		seed       = flag.Int64("seed", faultmap.DefaultSeed, "RNG seed of the derived per-map streams")
		vref       = flag.Float64("vref", faultmap.DefaultVref, "deep-sleep retention rail (V)")
		vdd        = flag.Float64("vdd", 1.1, "supply of the generation condition (V); static defect rates accelerate below nominal")
		defect     = flag.Float64("defect", faultmap.DefaultDefect, "per-bit base probability of each static fault class")
		tests      = flag.String("tests", "", "comma-separated March algorithms (empty = whole library)")
		randomOps  = flag.Int("random", 0, "add a dwelling constrained-random stream of N operations (0 = none)")
		engineName = flag.String("engine", faultmap.EngineMarch, `coverage evaluator: "march" (software executor) or "bist" (compiled controller)`)
		csv        = flag.Bool("csv", false, "emit CSV")
		dump       = flag.Bool("dump", false, "emit the corpus itself as map-per-line JSON instead of evaluating")
		rails      = flag.String("rails", "", "comma-separated retention rails (V); render coverage vs rail instead of one report")
		clusterURL = flag.String("cluster", "", "sramd node or coordinator base URL; shard the evaluation over POST /v1/batch")
		shards     = flag.Int("shards", 2, "shard jobs to fan out in -cluster mode")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	defer startProfile()()

	p, err := params(*maps, *seed, *vref, *vdd, *defect, *tests, *randomOps, *engineName)
	if err != nil {
		fail(err)
	}
	switch {
	case *dump:
		if *clusterURL != "" {
			fail(fmt.Errorf("-dump generates locally; it cannot be combined with -cluster"))
		}
		err = dumpCorpus(os.Stdout, p)
	case *rails != "":
		if *clusterURL != "" {
			fail(fmt.Errorf("-rails sweeps locally; it cannot be combined with -cluster"))
		}
		err = railCurve(p, *rails, *csv)
	default:
		var res faultmap.Result
		if *clusterURL != "" {
			res, err = clusterEstimate(*clusterURL, *shards, p, *vdd)
		} else {
			res, err = faultmap.Estimate(context.Background(), p)
		}
		if err == nil {
			emit(faultmap.Summary(res), *csv)
			emit(faultmap.Coverage(res), *csv)
		}
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultmap:", err)
	os.Exit(1)
}

// params assembles the evaluation parameters at the fixed Monte-Carlo
// condition (FS, 125 °C) the daemon's faultmap job also pins; only the
// supply is a knob, for voltage-acceleration experiments.
func params(maps int, seed int64, vref, vdd, defect float64, tests string, randomOps int, engineName string) (faultmap.Params, error) {
	p := faultmap.Params{
		Maps:   maps,
		Seed:   seed,
		Cond:   process.Condition{Corner: process.FS, VDD: vdd, TempC: 125},
		Vref:   vref,
		Defect: defect,
		Engine: engineName,
	}
	ts, err := parseTests(tests)
	if err != nil {
		return p, err
	}
	p.Tests = ts
	if randomOps > 0 {
		p.Random = []march.RandomSpec{faultmap.DefaultRandom(randomOps, seed)}
	}
	return p, nil
}

// parseTests resolves a comma-separated algorithm selection against the
// March library; empty selects the whole library (nil → library default).
func parseTests(s string) ([]march.Test, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []march.Test
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		t, ok := march.ByName(name)
		if !ok {
			var have []string
			for _, lt := range march.Library() {
				have = append(have, lt.Name)
			}
			return nil, fmt.Errorf("unknown March test %q (have %s)", name, strings.Join(have, ", "))
		}
		out = append(out, t)
	}
	return out, nil
}

func emit(t *report.Table, csv bool) {
	var err error
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		fail(err)
	}
	fmt.Println()
}

// dumpCorpus streams the corpus as map-per-line JSON — the raw artifact
// for external tooling. The bytes are a pure function of the params:
// regenerating with the same seed reproduces the stream exactly.
func dumpCorpus(w io.Writer, p faultmap.Params) error {
	g, err := faultmap.NewGenerator(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for i := 0; i < g.Params().Maps; i++ {
		if err := enc.Encode(g.Map(i)); err != nil {
			return err
		}
	}
	return nil
}

// railCurve evaluates the corpus at each retention rail and renders
// coverage vs rail, one row per rail — the EXP-FM sweep showing how the
// dwelling March m-LZ tracks the growing DRF population while dwell-free
// baselines stay blind to it.
func railCurve(p faultmap.Params, rails string, csv bool) error {
	var vs []float64
	for _, s := range strings.Split(rails, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad rail %q: %w", s, err)
		}
		vs = append(vs, v)
	}
	var rows []faultmap.Result
	for _, v := range vs {
		pr := p
		pr.Vref = v
		res, err := faultmap.Estimate(context.Background(), pr)
		if err != nil {
			return fmt.Errorf("rail %g V: %w", v, err)
		}
		rows = append(rows, res)
	}
	emit(faultmap.RailCurve(rows), csv)
	return nil
}

// clusterEstimate fans K shard jobs out through the batch endpoint and
// merges the partials. Shard s owns the map chunks c ≡ s (mod K), so the
// merged result is byte-identical to a local single-shard run with the
// same parameters — the cluster only changes where the evaluation runs.
func clusterEstimate(target string, shards int, p faultmap.Params, vdd float64) (faultmap.Result, error) {
	if shards < 2 {
		return faultmap.Result{}, fmt.Errorf("-shards must be >= 2 in cluster mode (one shard is a plain job)")
	}
	if vdd != 1.1 {
		return faultmap.Result{}, fmt.Errorf("cluster jobs pin the fixed Monte-Carlo condition; -vdd applies to local runs only")
	}
	var names []string
	for _, t := range p.Tests {
		names = append(names, t.Name)
	}
	randomOps := 0
	if len(p.Random) > 0 {
		randomOps = p.Random[0].Ops
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for s := 0; s < shards; s++ {
		spec := jobs.Spec{Kind: jobs.KindFaultMap, FaultMap: &jobs.FaultMapSpec{
			Maps: p.Maps, Seed: p.Seed, Vref: p.Vref, Defect: p.Defect,
			Tests: names, RandomOps: randomOps, BIST: p.Engine == faultmap.EngineBIST,
			Shards: shards, Shard: s,
		}}
		if err := enc.Encode(spec); err != nil {
			return faultmap.Result{}, err
		}
	}
	resp, err := http.Post(target+"/v1/batch", "application/x-ndjson", &body)
	if err != nil {
		return faultmap.Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return faultmap.Result{}, fmt.Errorf("batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	parts := make([]faultmap.Partial, shards)
	seen := make([]bool, shards)
	dec := json.NewDecoder(resp.Body)
	for {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			if err == io.EOF {
				break
			}
			return faultmap.Result{}, fmt.Errorf("batch stream: %w", err)
		}
		if br.Index < 0 || br.Index >= shards || seen[br.Index] {
			return faultmap.Result{}, fmt.Errorf("batch stream: unexpected result index %d", br.Index)
		}
		if br.State != cluster.BatchStateDone {
			return faultmap.Result{}, fmt.Errorf("shard %d: %s", br.Index, br.Error)
		}
		if err := json.Unmarshal(br.Result, &parts[br.Index]); err != nil {
			return faultmap.Result{}, fmt.Errorf("shard %d: bad partial: %w", br.Index, err)
		}
		seen[br.Index] = true
	}
	for s, ok := range seen {
		if !ok {
			return faultmap.Result{}, fmt.Errorf("batch stream ended without shard %d", s)
		}
	}
	return faultmap.MergePartials(parts)
}
