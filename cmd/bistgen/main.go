// Command bistgen compiles a March test (built-in or given in van-de-Goor
// notation) into BIST microcode, prints the disassembly and the cycle
// budget on the 4K×64 memory — the "what would this cost on-chip" view of
// a test algorithm.
//
// Usage:
//
//	bistgen -name "March m-LZ"
//	bistgen -test '{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}' -dwell 1m
package main

import (
	"flag"
	"fmt"
	"os"

	"sramtest/internal/bist"
	"sramtest/internal/march"
	"sramtest/internal/report"
	"sramtest/internal/spice"
	"sramtest/internal/sram"
)

func main() {
	var (
		name  = flag.String("name", "", "compile a library algorithm by name")
		test  = flag.String("test", "", "compile a custom March test in van-de-Goor notation")
		dwell = flag.String("dwell", "1m", "DS/LS dwell per sleep entry")
	)
	flag.Parse()

	var tst march.Test
	switch {
	case *name != "":
		found := false
		for _, lib := range march.Library() {
			if lib.Name == *name {
				tst, found = lib, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bistgen: unknown algorithm %q; use marchsim -list\n", *name)
			os.Exit(2)
		}
	case *test != "":
		var err error
		tst, err = march.ParseTest("custom", *test)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bistgen:", err)
			os.Exit(2)
		}
	default:
		tst = march.MarchMLZ()
	}
	dw, err := spice.ParseValue(*dwell)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bistgen:", err)
		os.Exit(2)
	}
	tst.Dwell = dw

	prog, err := bist.Compile(tst, sram.CycleTime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bistgen:", err)
		os.Exit(1)
	}
	fmt.Print(prog.String())

	p, c := tst.Length()
	ln := fmt.Sprintf("%dN", p)
	if c > 0 {
		ln = fmt.Sprintf("%dN+%d", p, c)
	}
	res, err := bist.New(prog, sram.New()).Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bistgen:", err)
		os.Exit(1)
	}
	fmt.Printf("\nalgorithm %s, length %s\n", tst, ln)
	fmt.Printf("on %d words at %s cycle: %d cycles = %s\n",
		sram.Words, report.SI(sram.CycleTime, "s"), res.Cycles,
		report.SI(float64(res.Cycles)*sram.CycleTime, "s"))
}
