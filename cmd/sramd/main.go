// Command sramd serves the repo's characterization workloads as a
// daemon: submit Table II characterizations (charac), Monte-Carlo DRV
// studies (exp) and test-flow optimizations (testflow) as asynchronous
// jobs over a JSON HTTP API, poll their sweep progress, and fetch
// results that are byte-identical to the defectchar/drv/flow CLIs.
// Identical re-submissions are cache hits in a content-addressed result
// store that can persist across restarts. Batches of specs stream
// results back as NDJSON (POST /v1/batch).
//
// With -coordinator, sramd fronts a fleet of nodes instead of running
// jobs itself: canonical job-spec SHAs are consistent-hashed to owner
// nodes, hot shards are stolen from, dead nodes are failed over, and
// results replicate through a coordinator-local content-addressed
// store.
//
// Usage:
//
//	sramd                                  # listen on :8347, in-memory store
//	sramd -addr :9000 -jobs 4 -queue 64    # bigger pool and queue
//	sramd -store-dir /var/lib/sramd        # persist results across restarts
//	sramd -job-timeout 10m -workers 8      # cap job wall-clock, bound sweeps
//	sramd -coordinator -nodes http://a:8347,http://b:8347
//
// See the README's "Running the service" and "Running a cluster"
// sections for walkthroughs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sramtest/internal/cli"
	"sramtest/internal/cluster"
	"sramtest/internal/diag"
	"sramtest/internal/diag/index"
	"sramtest/internal/engine"
	"sramtest/internal/jobs"
	"sramtest/internal/server"
	"sramtest/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		jobWorkers = flag.Int("jobs", 1, "concurrent job executors (each job parallelizes internally on the sweep engine)")
		queue      = flag.Int("queue", 16, "bounded job queue depth")
		jobTimeout = flag.Duration("job-timeout", 30*time.Minute, "per-job wall-clock limit (0 = unlimited)")
		retries    = flag.Int("retries", 2, "extra attempts after transient job failures (0 = none)")
		storeDir   = flag.String("store-dir", "", "persist results to this directory (empty = memory only)")
		storeCap   = flag.Int("store-cap", 256, "max cached results before LRU eviction")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
		engineName = flag.String("engine", "", "default simulation engine for jobs that don't name one (default spice)")
		inflight   = flag.Int("batch-inflight", 0, "concurrent jobs per /v1/batch request (0 = default: 16 node, 32 coordinator)")

		coordinator = flag.Bool("coordinator", false, "run as cluster coordinator over -nodes instead of executing jobs")
		nodeList    = flag.String("nodes", "", "comma-separated node base URLs (coordinator mode)")
		stealAt     = flag.Int("steal-threshold", 8, "owner-shard depth above which work is stolen (coordinator mode)")
		poll        = flag.Duration("node-poll", 25*time.Millisecond, "remote job poll interval (coordinator mode)")

		diagDict = flag.String("diag-dict", "", "serve streaming diagnosis (POST /v1/diagnose) from this dictionary artifact (node mode; coordinator mode fans out to nodes)")

		simJob = flag.Duration("sim-job", 0, "load-harness fixture: replace the runners with a deterministic sleep of this length (results are NOT real characterizations)")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	flag.Parse()
	applyWorkers()

	// Fail at boot on a bad engine name rather than at the first submit.
	if _, err := engine.Resolve(*engineName); err != nil {
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(2)
	}
	// Fixture bytes share keys with real results; never let them reach a
	// store that outlives the process.
	if *simJob > 0 && *storeDir != "" {
		fmt.Fprintln(os.Stderr, "sramd: -sim-job with a persistent -store-dir would poison the real result cache; use a memory store")
		os.Exit(2)
	}

	st, err := store.Open(*storeDir, *storeCap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(1)
	}

	var handler http.Handler
	var mgr *jobs.Manager
	if *coordinator {
		nodes := splitNodes(*nodeList)
		if len(nodes) == 0 {
			fmt.Fprintln(os.Stderr, "sramd: -coordinator requires -nodes")
			os.Exit(2)
		}
		coord, err := cluster.New(cluster.Config{
			Nodes:          nodes,
			StealThreshold: *stealAt,
			MaxInflight:    *inflight,
			DefaultEngine:  *engineName,
			PollInterval:   *poll,
			Store:          st,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sramd:", err)
			os.Exit(2)
		}
		handler = coord
	} else {
		mr := *retries
		if mr <= 0 {
			mr = -1 // jobs.Config treats negative as "no retries" (0 means default)
		}
		cfg := jobs.Config{
			Workers:       *jobWorkers,
			QueueDepth:    *queue,
			JobTimeout:    *jobTimeout,
			MaxRetries:    mr,
			DefaultEngine: *engineName,
			Store:         st,
		}
		if *simJob > 0 {
			cfg.Run = jobs.FixtureRunner(*simJob)
		}
		mgr = jobs.NewManager(cfg)
		api := server.New(mgr, st)
		api.BatchInflight = *inflight
		if *diagDict != "" {
			d, err := diag.Load(*diagDict)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sramd: -diag-dict:", err)
				os.Exit(2)
			}
			ix, err := index.New(d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sramd: -diag-dict:", err)
				os.Exit(2)
			}
			ist := ix.Stats()
			api.Diag = ix
			api.DiagInfo = server.DiagInfo{
				Entries: ist.Entries, Flow: len(d.Flow), Indexed: true,
				Groups: ist.Groups, Buckets: ist.Buckets,
			}
			fmt.Fprintf(os.Stderr, "sramd: diagnosis dictionary %s: %d entries, %d signatures, %d buckets\n",
				*diagDict, ist.Entries, ist.Groups, ist.Buckets)
		}
		api.PublishExpvar()
		handler = api
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := "node"
	if *coordinator {
		mode = fmt.Sprintf("coordinator over %s", *nodeList)
	}
	fmt.Fprintf(os.Stderr, "sramd: %s listening on %s (store: %s, cap %d)\n", mode, *addr, storeDesc(*storeDir), *storeCap)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain running
	// jobs within the budget (they are canceled when it runs out).
	fmt.Fprintln(os.Stderr, "sramd: shutting down, draining jobs...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "sramd: shutdown:", err)
	}
	if mgr != nil {
		mgr.Drain(shutdownCtx)
	}
	fmt.Fprintln(os.Stderr, "sramd: bye")
}

func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
