// Command sramd serves the repo's characterization workloads as a
// daemon: submit Table II characterizations (charac), Monte-Carlo DRV
// studies (exp) and test-flow optimizations (testflow) as asynchronous
// jobs over a JSON HTTP API, poll their sweep progress, and fetch
// results that are byte-identical to the defectchar/drv/flow CLIs.
// Identical re-submissions are cache hits in a content-addressed result
// store that can persist across restarts.
//
// Usage:
//
//	sramd                                  # listen on :8347, in-memory store
//	sramd -addr :9000 -jobs 4 -queue 64    # bigger pool and queue
//	sramd -store-dir /var/lib/sramd        # persist results across restarts
//	sramd -job-timeout 10m -workers 8      # cap job wall-clock, bound sweeps
//
// See the README's "Running the service" section for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sramtest/internal/cli"
	"sramtest/internal/engine"
	"sramtest/internal/jobs"
	"sramtest/internal/server"
	"sramtest/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		jobWorkers = flag.Int("jobs", 1, "concurrent job executors (each job parallelizes internally on the sweep engine)")
		queue      = flag.Int("queue", 16, "bounded job queue depth")
		jobTimeout = flag.Duration("job-timeout", 30*time.Minute, "per-job wall-clock limit (0 = unlimited)")
		retries    = flag.Int("retries", 2, "extra attempts after transient job failures (0 = none)")
		storeDir   = flag.String("store-dir", "", "persist results to this directory (empty = memory only)")
		storeCap   = flag.Int("store-cap", 256, "max cached results before LRU eviction")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
		engineName = flag.String("engine", "", "default simulation engine for jobs that don't name one (default spice)")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	flag.Parse()
	applyWorkers()

	// Fail at boot on a bad engine name rather than at the first submit.
	if _, err := engine.Resolve(*engineName); err != nil {
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(2)
	}

	st, err := store.Open(*storeDir, *storeCap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(1)
	}
	mr := *retries
	if mr <= 0 {
		mr = -1 // jobs.Config treats negative as "no retries" (0 means default)
	}
	mgr := jobs.NewManager(jobs.Config{
		Workers:       *jobWorkers,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		MaxRetries:    mr,
		DefaultEngine: *engineName,
		Store:         st,
	})
	api := server.New(mgr, st)
	api.PublishExpvar()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sramd: listening on %s (store: %s, cap %d)\n", *addr, storeDesc(*storeDir), *storeCap)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "sramd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain running
	// jobs within the budget (they are canceled when it runs out).
	fmt.Fprintln(os.Stderr, "sramd: shutting down, draining jobs...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "sramd: shutdown:", err)
	}
	mgr.Drain(shutdownCtx)
	fmt.Fprintln(os.Stderr, "sramd: bye")
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
