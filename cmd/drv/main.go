// Command drv reproduces the core-cell stability experiments of the
// paper's Section III: Table I (case-study retention voltages), Fig. 4
// (per-transistor Vth-variation sweeps) and the Section V DS-dwell study.
//
// Usage:
//
//	drv -table1            # Table I on the full corner×temperature grid
//	drv -fig4 [-points N]  # Fig. 4(a)/(b) sweeps
//	drv -dwell             # flip time vs undervoltage margin
//	drv -quick             # restrict any of the above to the dominant PVT conditions
//	drv -csv               # emit tables as CSV instead of ASCII
package main

import (
	"flag"
	"fmt"
	"os"

	"sramtest/internal/cell"
	"sramtest/internal/cli"
	"sramtest/internal/exp"
	"sramtest/internal/num"
	"sramtest/internal/process"
	"sramtest/internal/report"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "reproduce Table I")
		fig4   = flag.Bool("fig4", false, "reproduce Fig. 4")
		dwell  = flag.Bool("dwell", false, "run the DS-dwell flip-time study")
		mc     = flag.Int("mc", 0, "Monte-Carlo: sample N random cells' DRV distribution")
		points = flag.Int("points", 13, "sigma points for -fig4")
		quick  = flag.Bool("quick", false, "use only the dominant PVT conditions")
		csv    = flag.Bool("csv", false, "emit CSV")
	)
	applyWorkers := cli.Workers(flag.CommandLine)
	applyEngine := cli.Engine(flag.CommandLine)
	startProfile := cli.Profile(flag.CommandLine)
	flag.Parse()
	applyWorkers()
	if err := applyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "drv:", err)
		os.Exit(2)
	}
	defer startProfile()()
	if !*table1 && !*fig4 && !*dwell && *mc == 0 {
		*table1 = true
	}

	conds := cell.DRVConditions()
	if *quick {
		conds = []process.Condition{
			{Corner: process.FS, VDD: 1.1, TempC: 125},
			{Corner: process.FS, VDD: 1.1, TempC: -30},
		}
	}

	emit := func(t *report.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.Write(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "drv:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *table1 {
		rows := exp.Table1(conds)
		emit(exp.Table1Report(rows))
	}
	if *fig4 {
		res := exp.Fig4(num.Linspace(-6, 6, *points), conds)
		a, b := exp.Fig4Plots(res)
		if err := a.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "drv:", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := b.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "drv:", err)
			os.Exit(1)
		}
		fmt.Println()
		if bad := exp.Fig4Observations(res); len(bad) != 0 {
			fmt.Println("WARNING: paper observations violated:")
			for _, s := range bad {
				fmt.Println("  -", s)
			}
		} else {
			fmt.Println("Paper §III.B observations 1 and 2: hold.")
		}
	}
	if *mc > 0 {
		cond := process.Condition{Corner: process.FS, VDD: 1.1, TempC: 125}
		res := exp.MonteCarlo(cond, *mc, 2013)
		emit(exp.MonteCarloReport(res, exp.NewWorstDRVForTest(cond)))
	}
	if *dwell {
		// Both temperature extremes: hot cells flip within ns of the DS
		// entry, while cold cells leak so slowly that the flip can take
		// longer than the whole dwell — the paper's argument for a DS
		// time of at least 1 ms.
		v := process.Variation{process.MPcc1: -3, process.MNcc1: -3}
		for _, tempC := range []float64{125, -30} {
			cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: tempC}
			pts := exp.DwellTime(v, cond, nil, 200e-3)
			tbl := exp.DwellReport(pts, 1e-3)
			tbl.Title += fmt.Sprintf(" at %g°C", tempC)
			emit(tbl)
		}
	}
}
