// Command batchdiff compares two NDJSON batch outputs — typically a
// single-node sramd run and a cluster run over the same spec lines —
// and verifies the cluster contract: the same index set on both sides,
// no duplicate or missing lines, every line done, and byte-identical
// result bytes (and store keys) per index. Exit status is non-zero on
// any violation; CI's cluster-smoke job gates on it.
//
// Usage:
//
//	batchdiff single.ndjson cluster.ndjson
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sramtest/internal/cluster"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: batchdiff A.ndjson B.ndjson")
		os.Exit(2)
	}
	a, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "batchdiff:", err)
		os.Exit(2)
	}
	b, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "batchdiff:", err)
		os.Exit(2)
	}

	bad := 0
	report := func(format string, args ...any) {
		bad++
		fmt.Fprintf(os.Stderr, "batchdiff: "+format+"\n", args...)
	}
	for i, ra := range a {
		rb, ok := b[i]
		if !ok {
			report("index %d only in %s", i, os.Args[1])
			continue
		}
		if ra.State != cluster.BatchStateDone {
			report("index %d not done in %s: %s (%s)", i, os.Args[1], ra.State, ra.Error)
		}
		if rb.State != cluster.BatchStateDone {
			report("index %d not done in %s: %s (%s)", i, os.Args[2], rb.State, rb.Error)
		}
		if ra.Key != rb.Key {
			report("index %d key mismatch: %s vs %s", i, ra.Key, rb.Key)
		}
		if !bytes.Equal(ra.Result, rb.Result) {
			report("index %d result bytes differ (%d vs %d bytes)", i, len(ra.Result), len(rb.Result))
		}
	}
	for i := range b {
		if _, ok := a[i]; !ok {
			report("index %d only in %s", i, os.Args[2])
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "batchdiff: FAIL: %d violations across %d/%d results\n", bad, len(a), len(b))
		os.Exit(1)
	}
	fmt.Printf("batchdiff: OK: %d results byte-identical\n", len(a))
}

// load reads one NDJSON batch output into an index-keyed map, rejecting
// duplicate indices (the no-duplicates half of the cluster contract).
func load(path string) (map[int]cluster.BatchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[int]cluster.BatchResult{}
	dec := json.NewDecoder(f)
	for dec.More() {
		var br cluster.BatchResult
		if err := dec.Decode(&br); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if _, dup := out[br.Index]; dup {
			return nil, fmt.Errorf("%s: duplicate result for index %d", path, br.Index)
		}
		out[br.Index] = br
	}
	return out, nil
}
