// Command marchsim runs the March fault-coverage campaign (EXP-CV): every
// implemented March algorithm against every functional fault model,
// including the paper's DRF_DS, and prints the detection matrix. It can
// also run a single algorithm against an electrically modeled defective
// regulator.
//
// Usage:
//
//	marchsim                       # full coverage matrix
//	marchsim -defect 16 -res 5k    # March m-LZ vs one injected regulator defect
//	marchsim -list                 # list the algorithm library
//	marchsim -bist ...             # execute through the cycle-accurate BIST engine
//	marchsim -psw-break 7          # broken power-switch chain vs March LZ
//	marchsim -test '{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}'  # custom March notation
package main

import (
	"flag"
	"fmt"
	"os"

	"sramtest/internal/bist"
	"sramtest/internal/exp"
	"sramtest/internal/march"
	"sramtest/internal/process"
	"sramtest/internal/psw"
	"sramtest/internal/regulator"
	"sramtest/internal/report"
	"sramtest/internal/spice"
	"sramtest/internal/sram"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the algorithm library")
		defect   = flag.Int("defect", 0, "inject this regulator defect (1..32) and run March m-LZ")
		resStr   = flag.String("res", "1meg", "defect resistance (SPICE suffixes)")
		csFlag   = flag.Int("cs", 1, "case study scenario for the affected cells (1..5)")
		bistFlag = flag.Bool("bist", false, "execute through the cycle-accurate BIST engine")
		pswBreak = flag.Int("psw-break", -1, "break the power-switch daisy chain after this segment and run March LZ")
		custom   = flag.String("test", "", "run a custom March test in van-de-Goor notation")
	)
	flag.Parse()

	if *pswBreak >= 0 {
		runPSW(*pswBreak, *bistFlag)
		return
	}
	if *custom != "" {
		runCustom(*custom, *bistFlag)
		return
	}

	if *list {
		t := report.NewTable("March algorithm library", "Name", "Structure", "Length")
		for _, tst := range march.Library() {
			p, c := tst.Length()
			ln := fmt.Sprintf("%dN", p)
			if c > 0 {
				ln = fmt.Sprintf("%dN+%d", p, c)
			}
			t.AddRow(tst.Name, tst.String(), ln)
		}
		_ = t.Write(os.Stdout)
		return
	}

	if *defect != 0 {
		runDefect(*defect, *resStr, *csFlag)
		return
	}

	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}
	res, err := exp.Coverage(cond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	if err := exp.CoverageReport(res).Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	if len(res.Violations) > 0 {
		fmt.Println("\nEXPECTED-DETECTION VIOLATIONS:")
		for _, v := range res.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nAll expected detections hold; only March m-LZ catches DRF_DS.")
}

// runPSW demonstrates the power-switch substrate: a broken enable chain
// un-powers a row slice during gated modes; March LZ catches it.
func runPSW(breakAfter int, useBIST bool) {
	n := psw.New()
	n.BrokenAfter = breakAfter
	s := sram.New()
	if err := n.Attach(s); err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(2)
	}
	fmt.Printf("power-switch chain broken after segment %d: %d dead rows\n",
		breakAfter, len(n.DeadRows()))
	execute(march.MarchLZ(), s, useBIST)
}

// runCustom parses and executes a user-provided March test.
func runCustom(src string, useBIST bool) {
	tst, err := march.ParseTest("custom", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(2)
	}
	p, c := tst.Length()
	fmt.Printf("parsed %s (length %dN+%d)\n", tst, p, c)
	execute(tst, sram.New(), useBIST)
}

// execute runs a test through either engine and prints the outcome.
func execute(tst march.Test, s *sram.SRAM, useBIST bool) {
	if useBIST {
		prog, err := bist.Compile(tst, sram.CycleTime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			os.Exit(1)
		}
		res, err := bist.New(prog, s).Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			os.Exit(1)
		}
		fmt.Printf("BIST: %d cycles (%s)\n", res.Cycles, report.SI(float64(res.Cycles)*sram.CycleTime, "s"))
		printVerdict(res.Total, res.Failures)
		return
	}
	rep, err := march.Run(tst, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ops, %s test time\n", tst.Name, rep.Ops, report.SI(rep.TestTime, "s"))
	printVerdict(rep.TotalMiscompares, rep.Failures)
}

func printVerdict(total int, failures []march.Failure) {
	if total == 0 {
		fmt.Println("PASS — no faults detected")
		return
	}
	fmt.Printf("FAIL — %d miscompares; first failures:\n", total)
	for i, f := range failures {
		if i >= 8 {
			fmt.Printf("  ... %d more\n", total-i)
			break
		}
		fmt.Println("  ", f)
	}
}

// runDefect wires the full electrical chain: regulator with the injected
// defect -> retention model -> behavioral SRAM -> March m-LZ.
func runDefect(dn int, resStr string, csIdx int) {
	d := regulator.Defect(dn)
	if !d.Valid() {
		fmt.Fprintf(os.Stderr, "marchsim: invalid defect %d\n", dn)
		os.Exit(2)
	}
	res, err := spice.ParseValue(resStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(2)
	}
	if csIdx < 1 || csIdx > 5 {
		fmt.Fprintf(os.Stderr, "marchsim: invalid case study %d\n", csIdx)
		os.Exit(2)
	}
	cs := process.Table1CaseStudies()[(csIdx-1)*2]
	cond := process.Condition{Corner: process.FS, VDD: 1.0, TempC: 125}

	fmt.Printf("condition: %s; defect %s = %s; scenario %s (%d cells)\n",
		cond, d, report.SI(res, "Ω"), cs.Name, cs.Cells)
	ret, err := sram.NewElectricalRetention(cond, d, res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	fmt.Printf("deep-sleep rail: %s\n", report.SI(ret.RailVoltage(), "V"))

	s := sram.New()
	s.SetRetention(ret)
	for _, loc := range sram.SpreadCells(cs.Cells) {
		addr, bit := sram.CellAt(loc)
		s.RegisterVariation(addr, bit, cs.Variation)
	}
	rep, err := march.Run(march.MarchMLZ(), s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		os.Exit(1)
	}
	fmt.Printf("March m-LZ: %d ops, %s test time\n", rep.Ops, report.SI(rep.TestTime, "s"))
	if rep.Detected() {
		fmt.Printf("FAIL — %d miscompares; first failures:\n", rep.TotalMiscompares)
		for i, f := range rep.Failures {
			if i >= 8 {
				fmt.Printf("  ... %d more\n", rep.TotalMiscompares-i)
				break
			}
			fmt.Println("  ", f)
		}
	} else {
		fmt.Println("PASS — no retention faults detected at this resistance")
	}
}
