# Local mirror of the CI pipeline (.github/workflows/ci.yml).
#
#   make verify       build + vet + gofmt + test — the tier-1 gate
#   make race         race-enabled test run
#   make bench        one iteration of every benchmark (smoke)
#   make bench-report solver benchmarks vs baseline -> BENCH_10.json
#   make serve-smoke  end-to-end sramd daemon smoke test
#   make diag-smoke   end-to-end diagnose CLI smoke test
#   make diag-index-smoke  fleet-scale dictionary: index byte-identity, >=20x, streaming
#   make engine-smoke engine matrix: spice vs tiered must emit identical bytes
#   make cluster-smoke  3-node cluster batch must be byte-identical to one node
#   make loadgen-smoke  short load-generator run; fails on any dropped request
#   make yield-smoke  yield estimate: local, cluster shards and daemon job
#                     must be byte-identical; /metrics counters checked
#   make faultmap-smoke  1000-map corpus: worker counts, corpus dump,
#                     cluster shards and daemon job must be byte-identical
#   make noise-smoke  EXP-NS flip-probability scan: static-vs-noise
#                     divergence gate on the near-DRV cell; worker counts,
#                     cluster shards and daemon job must be byte-identical

GO ?= go

.PHONY: verify build vet fmt test race bench bench-report serve-smoke diag-smoke diag-index-smoke engine-smoke cluster-smoke loadgen-smoke yield-smoke faultmap-smoke noise-smoke

verify: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; \
		echo "$$out"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

bench-report:
	sh scripts/bench-report.sh

serve-smoke:
	sh scripts/serve-smoke.sh

diag-smoke:
	sh scripts/diag-smoke.sh

diag-index-smoke:
	sh scripts/diag-index-smoke.sh

engine-smoke:
	sh scripts/engine-smoke.sh

cluster-smoke:
	sh scripts/cluster-smoke.sh

loadgen-smoke:
	sh scripts/loadgen-smoke.sh

yield-smoke:
	sh scripts/yield-smoke.sh

faultmap-smoke:
	sh scripts/faultmap-smoke.sh

noise-smoke:
	sh scripts/noise-smoke.sh
