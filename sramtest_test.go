package sramtest

import (
	"math"
	"testing"
)

// The facade tests are integration smoke tests: each public entry point
// must compose correctly end-to-end. The detailed behaviour is covered by
// the internal package suites.

func TestFacadeGridAndCaseStudies(t *testing.T) {
	if len(PVTGrid()) != 45 {
		t.Error("PVTGrid should have 45 conditions")
	}
	if len(Table1CaseStudies()) != 10 {
		t.Error("ten Table I case studies expected")
	}
	if Nominal().VDD != 1.1 {
		t.Error("nominal supply is 1.1V")
	}
}

func TestFacadeCellAnalysis(t *testing.T) {
	cond := Condition{Corner: FS, VDD: 1.1, TempC: 125}
	c := NewCell(WorstCaseVariation(), cond)
	drv := c.DRV1()
	if drv < 0.6 || drv > 0.8 {
		t.Errorf("worst-case DRV1 at fs/125 = %gmV, want ≈726mV", drv*1e3)
	}
	if testing.Short() {
		return
	}
	r := WorstDRV(WorstCaseVariation())
	if math.Abs(r.DRV-0.726) > 0.02 {
		t.Errorf("worst-case DRV %gmV, want ≈726mV (paper: 730mV)", r.DRV*1e3)
	}
}

func TestFacadeDefects(t *testing.T) {
	if len(AllDefects()) != 32 || len(DRFDefects()) != 17 {
		t.Error("defect counts wrong")
	}
	info := DefectOf(DRFDefects()[0])
	if info.Desc == "" || info.Branch == "" {
		t.Error("defect info incomplete")
	}
}

func TestFacadeMarchOnFaultySRAM(t *testing.T) {
	cond := Condition{Corner: FS, VDD: 1.0, TempC: 125}
	s := NewSRAM()
	s.SetRetention(NewThresholdRetention(cond, 0.5))
	s.RegisterVariation(7, 3, WorstCaseVariation())
	rep, err := RunMarch(MarchMLZ(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected() {
		t.Error("March m-LZ must detect the retention fault")
	}
	s2 := NewSRAM()
	s2.SetRetention(NewThresholdRetention(cond, 0.5))
	s2.RegisterVariation(7, 3, WorstCaseVariation())
	rep2, err := RunMarch(MarchLZ(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Detected() {
		t.Error("March LZ (light sleep) must miss the deep-sleep retention fault")
	}
	if len(MarchLibrary()) != 5 {
		t.Error("library should have 5 algorithms")
	}
}

func TestFacadeCharacterization(t *testing.T) {
	opt := DefaultCharacOptions()
	opt.Conditions = []Condition{{Corner: FS, VDD: 1.0, TempC: 125}}
	res, err := CharacterizeDefect(DRFDefects()[0], Table1CaseStudies()[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open() {
		t.Error("Df1 should cause DRFs for CS1")
	}
}

func TestFacadeDiagnosis(t *testing.T) {
	if testing.Short() {
		t.Skip("dictionary build is seconds of simulation")
	}
	opt := DefaultDiagOptions()
	opt.Defects = DRFDefects()[:1] // Df1
	opt.CaseStudies = Table1CaseStudies()[:2]
	opt.Decades = []float64{1e5}
	opt.BaseOnly = true
	d, err := BuildFaultDictionary(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) == 0 {
		t.Fatal("dictionary is empty")
	}
	cand := d.Entries[0].Candidate()
	sig, err := ObserveDiagSignature(opt, cand)
	if err != nil {
		t.Fatal(err)
	}
	dg := d.Match(sig)
	if !dg.Exact || dg.Ranked[0].Defect != cand.Defect {
		t.Errorf("round trip missed: %+v", dg.Ranked)
	}
}

func TestFacadeElectricalRetention(t *testing.T) {
	cond := Condition{Corner: FS, VDD: 1.0, TempC: 125}
	ret, err := NewElectricalRetention(cond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := ret.RailVoltage(); v < 0.7 || v > 0.8 {
		t.Errorf("fault-free rail %g", v)
	}
}
